// Package sweep evaluates Cartesian grids of yield scenarios — survival
// probability × array size × redundancy strategy — in one pass, reproducing
// the families of yield-vs-defect-probability curves that carry the paper's
// evaluation (Figs. 7, 9, 10) and the parameter-grid studies of the
// companion fault-tolerance work.
//
// A Spec names the axes of the grid; Expand flattens it into a deterministic
// ordered list of Points; Run evaluates the points with bounded concurrency
// while emitting results strictly in point order, so sweep output is
// byte-identical no matter how many workers execute it. Evaluate is the
// direct (uncached) evaluator over the core/yieldsim machinery; the service
// engine wraps the same Point type with its LRU cache and single-flight
// layer so every grid point of an HTTP sweep is individually cacheable.
//
// Four redundancy strategies are understood:
//
//   - "none": no spares at all; yield is the closed form p^n.
//   - "local": a DTMB(s,p) interstitial-redundancy design on a parallelogram
//     footprint repaired by local reconfiguration (the paper's proposal),
//     estimated by the chunk-seeded Monte-Carlo kernel.
//   - "shifted": a square array with boundary spare rows repaired by shifted
//     replacement (the baseline of the paper's Fig. 2), estimated by the
//     same kernel over sqgrid placements.
//   - "hex": the same DTMB(s,p) interstitial designs instantiated over a
//     regular hexagonal chip footprint (the companion fault-tolerance work's
//     hexagonal-array geometry), repaired by the same six-neighbor matcher.
//
// Orthogonally to the strategy axis, every point carries a spatial defect
// model: "independent" (the paper's i.i.d. Bernoulli assumption) or
// "clustered" (center-seeded clusters with geometric radius decay at the
// same expected defect density), so redundancy schemes can be compared under
// realistic spatially correlated manufacturing defects.
package sweep

import (
	"fmt"

	"dmfb/internal/defects"
	"dmfb/internal/layout"
	"dmfb/internal/stats"
)

// Strategy names a redundancy/reconfiguration scheme.
type Strategy string

// The four supported strategies.
const (
	// None is the no-redundancy baseline: any fault discards the chip.
	None Strategy = "none"
	// Local is interstitial redundancy with local reconfiguration on a
	// parallelogram footprint, the paper's proposal. Points carry a DTMB
	// design name.
	Local Strategy = "local"
	// Shifted is boundary spare rows with shifted replacement, the baseline
	// of the paper's Fig. 2. Points carry a spare-row count.
	Shifted Strategy = "shifted"
	// Hex is interstitial redundancy on a regular hexagonal chip footprint,
	// the hexagonal-array DTMB geometry of the companion fault-tolerance
	// work. Points carry a DTMB design name, like Local.
	Hex Strategy = "hex"
)

// valid reports whether s is a known strategy.
func (s Strategy) valid() bool {
	switch s {
	case None, Local, Shifted, Hex:
		return true
	}
	return false
}

// DefectModel names a spatial defect model along the sweep's defect-model
// axis.
type DefectModel string

// The two supported defect models.
const (
	// Independent is the paper's assumption: every cell fails i.i.d. with
	// probability 1−p.
	Independent DefectModel = "independent"
	// Clustered seeds defect clusters with geometric radius decay at the
	// same expected density (1−p)·N; points carry a cluster size.
	Clustered DefectModel = "clustered"
)

// valid reports whether m is a known defect model.
func (m DefectModel) valid() bool {
	return m == Independent || m == Clustered
}

// DefaultClusterSize is the expected cells per cluster when a spec sweeps
// the clustered model without choosing a size.
const DefaultClusterSize = 4.0

// Spec describes a sweep grid. Zero-valued axes take the defaults noted on
// each field; every combination of the applicable axes becomes one Point.
type Spec struct {
	// Strategies lists the redundancy schemes to evaluate; empty means
	// {Local}.
	Strategies []Strategy
	// Designs lists DTMB design names for the Local and Hex strategies
	// (canonical names as produced by layout, e.g. "DTMB(2,6)"); empty means
	// the four canonical Table 1 designs. Ignored by None and Shifted.
	Designs []string
	// NPrimaries lists primary-cell counts n; empty means {100}.
	NPrimaries []int
	// Ps lists explicit survival probabilities. When empty, the range
	// [PMin, PMax] is sampled at PPoints evenly spaced values.
	Ps []float64
	// PMin, PMax, PPoints define the sampled range when Ps is empty; zero
	// values mean the paper's 0.90..1.00 at 11 points.
	PMin, PMax float64
	PPoints    int
	// SpareRows lists boundary spare-row counts for the Shifted strategy;
	// empty means {1}. Ignored by the other strategies.
	SpareRows []int
	// DefectModels lists the spatial defect models to evaluate; empty means
	// {Independent}. The models multiply every strategy's grid.
	DefectModels []DefectModel
	// ClusterSize is the expected faulty cells per cluster for the Clustered
	// model; 0 means DefaultClusterSize. Ignored by Independent points.
	ClusterSize float64
}

// withDefaults fills the documented defaults for empty axes.
func (s Spec) withDefaults() Spec {
	if len(s.Strategies) == 0 {
		s.Strategies = []Strategy{Local}
	}
	if len(s.Designs) == 0 {
		for _, d := range layout.AllDesigns() {
			s.Designs = append(s.Designs, d.Name)
		}
	}
	if len(s.NPrimaries) == 0 {
		s.NPrimaries = []int{100}
	}
	// The range fields default independently, so e.g. a spec setting only
	// PPoints still sweeps the paper's 0.90..1.00 band rather than a
	// degenerate [0,0] range.
	if len(s.Ps) == 0 {
		if s.PMin == 0 && s.PMax == 0 {
			s.PMin, s.PMax = 0.90, 1.00
		}
		if s.PPoints == 0 {
			s.PPoints = 11
		}
	}
	if len(s.SpareRows) == 0 {
		s.SpareRows = []int{1}
	}
	if len(s.DefectModels) == 0 {
		s.DefectModels = []DefectModel{Independent}
	}
	if s.ClusterSize == 0 {
		s.ClusterSize = DefaultClusterSize
	}
	return s
}

// PValues returns the survival probabilities the sweep samples.
func (s Spec) PValues() []float64 {
	s = s.withDefaults()
	if len(s.Ps) > 0 {
		return s.Ps
	}
	if s.PPoints == 1 {
		return []float64{s.PMin}
	}
	return stats.Linspace(s.PMin, s.PMax, s.PPoints)
}

// validate checks the axes of an already-defaulted spec.
func (s Spec) validate() error {
	for _, st := range s.Strategies {
		if !st.valid() {
			return fmt.Errorf("sweep: unknown strategy %q (want none, local, shifted or hex)", st)
		}
	}
	for _, name := range s.Designs {
		if _, err := layout.DesignByName(name); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
	}
	for _, n := range s.NPrimaries {
		if n <= 0 {
			return fmt.Errorf("sweep: primary-cell count %d must be positive", n)
		}
	}
	if len(s.Ps) == 0 {
		if s.PPoints < 1 {
			return fmt.Errorf("sweep: p_points %d must be at least 1", s.PPoints)
		}
		if s.PMin > s.PMax {
			return fmt.Errorf("sweep: p range [%v,%v] is inverted", s.PMin, s.PMax)
		}
	}
	for _, p := range s.PValues() {
		if p != p || p < 0 || p > 1 {
			return fmt.Errorf("sweep: survival probability %v outside [0,1]", p)
		}
	}
	for _, r := range s.SpareRows {
		if r < 1 {
			return fmt.Errorf("sweep: spare-row count %d must be at least 1", r)
		}
	}
	for _, m := range s.DefectModels {
		if !m.valid() {
			return fmt.Errorf("sweep: unknown defect model %q (want independent or clustered)", m)
		}
	}
	if s.ClusterSize != s.ClusterSize || s.ClusterSize < 1 {
		return fmt.Errorf("sweep: cluster size %v must be at least 1", s.ClusterSize)
	}
	return nil
}

// NumPoints returns the number of grid points Expand would produce.
func (s Spec) NumPoints() int {
	s = s.withDefaults()
	nps := len(s.NPrimaries) * len(s.PValues())
	total := 0
	for _, st := range s.Strategies {
		switch st {
		case Local, Hex:
			total += len(s.Designs) * nps
		case Shifted:
			total += len(s.SpareRows) * nps
		default:
			total += nps
		}
	}
	return total * len(s.DefectModels)
}

// Scenario is one fully specified yield scenario — a redundancy strategy
// with its strategy-specific axis value, an array size, a survival
// probability, and a spatial defect model. It is the single currency the
// sweep engine, the yieldsim dispatch (EvaluateScenario), the HTTP service,
// and the CLIs exchange: a sweep grid is an ordered list of Scenarios, and a
// single /v2/evaluate request is exactly one.
type Scenario struct {
	// Strategy selects the redundancy/reconfiguration scheme.
	Strategy Strategy
	// Design is the DTMB design name (Local and Hex strategies; "" otherwise).
	Design string
	// NPrimary is the number of working cells n.
	NPrimary int
	// SpareRows is the boundary spare-row count (Shifted only; 0 otherwise).
	SpareRows int
	// P is the cell survival probability.
	P float64
	// DefectModel selects the spatial defect model of the scenario.
	DefectModel DefectModel
	// ClusterSize is the expected faulty cells per cluster (Clustered model
	// only; 0 otherwise).
	ClusterSize float64
}

// Normalize fills the scenario defaults (defect model, cluster size) and
// clears fields the strategy and model do not use, so equal scenarios have
// equal canonical forms regardless of how callers populated the inapplicable
// axes.
func (sc Scenario) Normalize() Scenario {
	if sc.DefectModel == "" {
		sc.DefectModel = Independent
	}
	if sc.DefectModel == Clustered {
		if sc.ClusterSize == 0 {
			sc.ClusterSize = DefaultClusterSize
		}
	} else {
		sc.ClusterSize = 0
	}
	switch sc.Strategy {
	case Local, Hex:
		sc.SpareRows = 0
	case Shifted:
		sc.Design = ""
		if sc.SpareRows == 0 {
			sc.SpareRows = 1
		}
	default:
		sc.Design = ""
		sc.SpareRows = 0
	}
	return sc
}

// Validate checks a single (normalized or raw) scenario: known strategy and
// defect model, the strategy-specific axis present exactly when applicable,
// and the numeric fields in range. Design existence is checked at
// evaluation, where the name is resolved.
func (sc Scenario) Validate() error {
	if !sc.Strategy.valid() {
		return fmt.Errorf("sweep: unknown strategy %q (want none, local, shifted or hex)", sc.Strategy)
	}
	switch sc.Strategy {
	case Local, Hex:
		if sc.Design == "" {
			return fmt.Errorf("sweep: strategy %q requires a design", sc.Strategy)
		}
		if sc.SpareRows != 0 {
			return fmt.Errorf("sweep: spare_rows applies only to the shifted strategy")
		}
	case Shifted:
		if sc.Design != "" {
			return fmt.Errorf("sweep: design applies only to the local and hex strategies")
		}
		if sc.SpareRows < 1 {
			return fmt.Errorf("sweep: spare-row count %d must be at least 1", sc.SpareRows)
		}
	default:
		if sc.Design != "" {
			return fmt.Errorf("sweep: design applies only to the local and hex strategies")
		}
		if sc.SpareRows != 0 {
			return fmt.Errorf("sweep: spare_rows applies only to the shifted strategy")
		}
	}
	if sc.NPrimary <= 0 {
		return fmt.Errorf("sweep: primary-cell count %d must be positive", sc.NPrimary)
	}
	if sc.P != sc.P || sc.P < 0 || sc.P > 1 {
		return fmt.Errorf("sweep: survival probability %v outside [0,1]", sc.P)
	}
	if !sc.DefectModel.valid() {
		return fmt.Errorf("sweep: unknown defect model %q (want independent or clustered)", sc.DefectModel)
	}
	if sc.DefectModel == Clustered {
		if sc.ClusterSize != sc.ClusterSize || sc.ClusterSize < 1 {
			return fmt.Errorf("sweep: cluster size %v must be at least 1", sc.ClusterSize)
		}
	} else if sc.ClusterSize != 0 {
		return fmt.Errorf("sweep: cluster_size applies only to the clustered defect model")
	}
	return nil
}

// Model converts the scenario's defect-model axes to the defects package
// type.
func (sc Scenario) Model() defects.Model {
	return defects.Model{Clustered: sc.DefectModel == Clustered, ClusterSize: sc.ClusterSize}
}

// Point is one Scenario at its position in a sweep grid's deterministic
// order.
type Point struct {
	// Index is the point's position in the sweep's deterministic order.
	Index int
	Scenario
}

// Expand validates the spec and flattens it into its ordered point list.
// The order is deterministic: strategies in the given order; within a
// strategy the defect model varies slowest, then the applicable strategy
// axis (design or spare rows), then NPrimary, then P fastest.
func (s Spec) Expand() ([]Point, error) {
	s = s.withDefaults()
	if err := s.validate(); err != nil {
		return nil, err
	}
	ps := s.PValues()
	pts := make([]Point, 0, s.NumPoints())
	add := func(sc Scenario) {
		pts = append(pts, Point{Index: len(pts), Scenario: sc})
	}
	for _, st := range s.Strategies {
		for _, m := range s.DefectModels {
			size := 0.0
			if m == Clustered {
				size = s.ClusterSize
			}
			switch st {
			case Local, Hex:
				for _, d := range s.Designs {
					for _, n := range s.NPrimaries {
						for _, p := range ps {
							add(Scenario{Strategy: st, Design: d, NPrimary: n, P: p, DefectModel: m, ClusterSize: size})
						}
					}
				}
			case Shifted:
				for _, r := range s.SpareRows {
					for _, n := range s.NPrimaries {
						for _, p := range ps {
							add(Scenario{Strategy: Shifted, SpareRows: r, NPrimary: n, P: p, DefectModel: m, ClusterSize: size})
						}
					}
				}
			default:
				for _, n := range s.NPrimaries {
					for _, p := range ps {
						add(Scenario{Strategy: None, NPrimary: n, P: p, DefectModel: m, ClusterSize: size})
					}
				}
			}
		}
	}
	return pts, nil
}
