package sweep

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"dmfb/internal/core"
	"dmfb/internal/layout"
	"dmfb/internal/yieldsim"
)

func TestSpecDefaultsAndNumPoints(t *testing.T) {
	var s Spec
	pts, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// Defaults: local strategy, four canonical designs, n=100, 11 ps.
	if want := 4 * 11; len(pts) != want {
		t.Fatalf("default spec expands to %d points, want %d", len(pts), want)
	}
	if got := s.NumPoints(); got != len(pts) {
		t.Errorf("NumPoints %d != len(Expand) %d", got, len(pts))
	}
	for i, pt := range pts {
		if pt.Index != i {
			t.Fatalf("point %d carries index %d", i, pt.Index)
		}
		if pt.Strategy != Local || pt.Design == "" || pt.SpareRows != 0 {
			t.Fatalf("default point %d malformed: %+v", i, pt)
		}
	}
}

func TestSpecExpandAxesPerStrategy(t *testing.T) {
	s := Spec{
		Strategies: []Strategy{None, Local, Shifted},
		Designs:    []string{"DTMB(2,6)"},
		NPrimaries: []int{30, 60},
		Ps:         []float64{0.9, 0.95, 1.0},
		SpareRows:  []int{1, 2},
	}
	pts, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// none: 2*3, local: 1*2*3, shifted: 2*2*3.
	if want := 6 + 6 + 12; len(pts) != want {
		t.Fatalf("%d points, want %d", len(pts), want)
	}
	if got := s.NumPoints(); got != len(pts) {
		t.Errorf("NumPoints %d != %d", got, len(pts))
	}
	for _, pt := range pts {
		switch pt.Strategy {
		case None:
			if pt.Design != "" || pt.SpareRows != 0 {
				t.Errorf("none point carries strategy axes: %+v", pt)
			}
		case Local:
			if pt.Design == "" || pt.SpareRows != 0 {
				t.Errorf("local point malformed: %+v", pt)
			}
		case Shifted:
			if pt.Design != "" || pt.SpareRows < 1 {
				t.Errorf("shifted point malformed: %+v", pt)
			}
		}
	}
	// Expansion is deterministic.
	again, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pts, again) {
		t.Error("Expand is not deterministic")
	}
}

func TestSpecValidation(t *testing.T) {
	cases := []Spec{
		{Strategies: []Strategy{"bogus"}},
		{Designs: []string{"DTMB(9,9)"}},
		{NPrimaries: []int{0}},
		{Ps: []float64{1.5}},
		{Ps: []float64{math.NaN()}},
		{PMin: 0.9, PMax: 0.8, PPoints: 3},
		{PMin: 0.9, PMax: 1.0, PPoints: -1},
		{SpareRows: []int{0}, Strategies: []Strategy{Shifted}},
	}
	for i, s := range cases {
		if _, err := s.Expand(); err == nil {
			t.Errorf("case %d: invalid spec %+v accepted", i, s)
		}
	}
}

func TestRunEmitsInPointOrder(t *testing.T) {
	pts := make([]Point, 16)
	for i := range pts {
		pts[i] = Point{Index: i, Scenario: Scenario{Strategy: None, NPrimary: 10, P: 0.9}}
	}
	// Later points finish first: early indices sleep longest.
	eval := func(ctx context.Context, pt Point) (PointResult, error) {
		time.Sleep(time.Duration(len(pts)-pt.Index) * time.Millisecond)
		return PointResult{Point: pt}, nil
	}
	var order []int
	err := Run(context.Background(), pts, 8, eval, func(r PointResult) error {
		order = append(order, r.Index)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, idx := range order {
		if idx != i {
			t.Fatalf("emission order %v not ascending", order)
		}
	}
	if len(order) != len(pts) {
		t.Fatalf("emitted %d of %d points", len(order), len(pts))
	}
}

func TestRunResultsIndependentOfWorkerCount(t *testing.T) {
	spec := Spec{
		Strategies: []Strategy{None, Local, Shifted},
		Designs:    []string{"DTMB(2,6)", "DTMB(4,4)"},
		NPrimaries: []int{24},
		Ps:         []float64{0.9, 0.97},
		SpareRows:  []int{1},
	}
	pts, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	sp := core.SimParams{Runs: 300, Seed: 42}
	collect := func(workers int) []PointResult {
		var out []PointResult
		if err := Run(context.Background(), pts, workers, Evaluator(sp), func(r PointResult) error {
			out = append(out, r)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	one := collect(1)
	four := collect(4)
	if !reflect.DeepEqual(one, four) {
		t.Fatalf("results differ across worker counts:\n1: %+v\n4: %+v", one, four)
	}
}

func TestRunFirstErrorWinsAndStopsEmission(t *testing.T) {
	pts := make([]Point, 12)
	for i := range pts {
		pts[i] = Point{Index: i, Scenario: Scenario{Strategy: None, NPrimary: 10, P: 0.9}}
	}
	boom := errors.New("boom")
	eval := func(ctx context.Context, pt Point) (PointResult, error) {
		if pt.Index == 5 {
			return PointResult{}, boom
		}
		return PointResult{Point: pt}, nil
	}
	var emitted []int
	err := Run(context.Background(), pts, 4, eval, func(r PointResult) error {
		emitted = append(emitted, r.Index)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if len(emitted) != 5 {
		t.Fatalf("emitted %v, want exactly indices 0..4", emitted)
	}
}

func TestRunEmitErrorCancels(t *testing.T) {
	pts := make([]Point, 8)
	for i := range pts {
		pts[i] = Point{Index: i, Scenario: Scenario{Strategy: None, NPrimary: 10, P: 0.9}}
	}
	stop := errors.New("client gone")
	var calls atomic.Int32
	err := Run(context.Background(), pts, 2,
		func(ctx context.Context, pt Point) (PointResult, error) {
			calls.Add(1)
			return PointResult{Point: pt}, nil
		},
		func(r PointResult) error {
			if r.Index == 2 {
				return stop
			}
			return nil
		})
	if !errors.Is(err, stop) {
		t.Fatalf("err = %v, want emit error", err)
	}
}

func TestRunCancellationLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	spec := Spec{
		Strategies: []Strategy{Local},
		Designs:    []string{"DTMB(2,6)"},
		NPrimaries: []int{80},
		PMin:       0.90, PMax: 0.99, PPoints: 40,
	}
	pts, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	sp := core.SimParams{Runs: 200000, Seed: 1} // long enough to be mid-flight
	emitted := 0
	done := make(chan error, 1)
	go func() {
		done <- Run(ctx, pts, 4, Evaluator(sp), func(r PointResult) error {
			emitted++
			return nil
		})
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after cancellation")
	}
	// Run joins its workers before returning; give the runtime a moment to
	// retire exiting goroutines, then require the count to come back down.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after cancellation", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestEvaluateNoneMatchesClosedForm(t *testing.T) {
	pt := Point{Scenario: Scenario{Strategy: None, NPrimary: 50, P: 0.97}}
	res, err := Evaluate(context.Background(), pt, core.SimParams{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	want := yieldsim.NoRedundancy(0.97, 50)
	if res.Yield != want || res.CILo != want || res.CIHi != want || res.EffectiveYield != want {
		t.Errorf("none point %+v, want closed form %v everywhere", res, want)
	}
	if res.Runs != 0 || res.NTotal != 50 {
		t.Errorf("none point metadata %+v", res)
	}
}

func TestEvaluateLocalMatchesCore(t *testing.T) {
	sp := core.SimParams{Runs: 500, Seed: 99}
	pt := Point{Scenario: Scenario{Strategy: Local, Design: "DTMB(2,6)", NPrimary: 40, P: 0.95}}
	res, err := Evaluate(context.Background(), pt, sp)
	if err != nil {
		t.Fatal(err)
	}
	chip, err := core.New(layout.DTMB26(), 40)
	if err != nil {
		t.Fatal(err)
	}
	ya, err := chip.AnalyzeYieldContext(context.Background(), 0.95, sp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Yield != ya.Yield || res.CILo != ya.CILo || res.EffectiveYield != ya.EffectiveYield {
		t.Errorf("sweep %+v disagrees with core %+v", res, ya)
	}
	if res.Runs != 500 || res.NTotal != ya.NTotal {
		t.Errorf("metadata %+v vs %+v", res, ya)
	}
}

func TestEvaluateShiftedBasics(t *testing.T) {
	sp := core.SimParams{Runs: 400, Seed: 3}
	at := func(p float64) PointResult {
		res, err := Evaluate(context.Background(), Point{Scenario: Scenario{Strategy: Shifted, NPrimary: 36, SpareRows: 1, P: p}}, sp)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if y := at(1.0).Yield; y != 1 {
		t.Errorf("yield at p=1 is %v, want 1", y)
	}
	lo, hi := at(0.90), at(0.99)
	if lo.Yield >= hi.Yield {
		t.Errorf("shifted yield not increasing in p: %v at 0.90 vs %v at 0.99", lo.Yield, hi.Yield)
	}
	if lo.NTotal <= lo.NPrimary {
		t.Errorf("shifted NTotal %d must exceed n %d (spare rows)", lo.NTotal, lo.NPrimary)
	}
	if want := yieldsim.NoRedundancy(0.90, 36); lo.NoRedundancy != want {
		t.Errorf("baseline %v, want %v", lo.NoRedundancy, want)
	}
}

func TestEvaluateUnknownStrategy(t *testing.T) {
	if _, err := Evaluate(context.Background(), Point{Scenario: Scenario{Strategy: "bogus", NPrimary: 10, P: 0.9}}, core.SimParams{}); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestYieldResultCarriesSuccesses(t *testing.T) {
	for _, succ := range []int{0, 1, 123, 400} {
		r := PointResult{Runs: 400, Successes: succ, Yield: float64(succ) / 400}
		if got := r.YieldResult().Successes; got != succ {
			t.Errorf("successes %d, want %d", got, succ)
		}
	}
	// The old reconstruction (round(Yield·Runs)) reported 0 successes for
	// closed-form and cached points, where Runs is 0; carried successes must
	// survive that case.
	cached := PointResult{Runs: 0, Successes: 37, Yield: 37.0 / 400}
	if got := cached.YieldResult().Successes; got != 37 {
		t.Errorf("cached-point successes %d, want 37", got)
	}
}

func TestPValuesSinglePoint(t *testing.T) {
	s := Spec{PMin: 0.95, PMax: 0.95, PPoints: 1}
	ps := s.PValues()
	if len(ps) != 1 || ps[0] != 0.95 {
		t.Errorf("PValues = %v", ps)
	}
}

func ExampleSpec_Expand() {
	s := Spec{
		Strategies: []Strategy{Local},
		Designs:    []string{"DTMB(2,6)"},
		NPrimaries: []int{100},
		Ps:         []float64{0.95, 0.99},
	}
	pts, _ := s.Expand()
	for _, pt := range pts {
		fmt.Printf("%d %s %s n=%d p=%v\n", pt.Index, pt.Strategy, pt.Design, pt.NPrimary, pt.P)
	}
	// Output:
	// 0 local DTMB(2,6) n=100 p=0.95
	// 1 local DTMB(2,6) n=100 p=0.99
}

func TestRunRealErrorNotMaskedByCancellation(t *testing.T) {
	// An eval failure at a later index must not abort slower earlier
	// points into context errors that then mask it: the prefix before the
	// failing index is always emitted and the real error is returned.
	pts := make([]Point, 6)
	for i := range pts {
		pts[i] = Point{Index: i, Scenario: Scenario{Strategy: None, NPrimary: 10, P: 0.9}}
	}
	boom := errors.New("boom")
	eval := func(ctx context.Context, pt Point) (PointResult, error) {
		if pt.Index == 3 {
			return PointResult{}, boom
		}
		time.Sleep(30 * time.Millisecond) // slower than the failure
		if err := ctx.Err(); err != nil {
			return PointResult{}, err
		}
		return PointResult{Point: pt}, nil
	}
	var emitted []int
	err := Run(context.Background(), pts, 4, eval, func(r PointResult) error {
		emitted = append(emitted, r.Index)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the real eval error", err)
	}
	if len(emitted) != 3 {
		t.Fatalf("emitted %v, want exactly indices 0..2", emitted)
	}
}

func TestPPointsOnlyStillSweepsPaperRange(t *testing.T) {
	s := Spec{PPoints: 5}
	ps := s.PValues()
	if len(ps) != 5 || ps[0] != 0.90 || ps[4] != 1.00 {
		t.Errorf("PValues with only PPoints set = %v, want 0.90..1.00", ps)
	}
	s = Spec{PMin: 0.5, PMax: 0.7}
	ps = s.PValues()
	if len(ps) != 11 || ps[0] != 0.5 || ps[10] != 0.7 {
		t.Errorf("PValues with only range set = %v, want 11 points over [0.5,0.7]", ps)
	}
}
