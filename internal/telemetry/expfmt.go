package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Sample is one parsed exposition line: a metric name, its rendered label
// signature (as written, without re-canonicalization), and its value.
type Sample struct {
	Name   string
	Labels string
	Value  float64
}

// Exposition is the parsed form of one Prometheus text-format payload.
type Exposition struct {
	// Types maps family name → declared type ("counter", "gauge",
	// "histogram", ...).
	Types map[string]string
	// Samples lists every sample line in input order.
	Samples []Sample
}

// Families returns the set of base family names that have at least one
// sample, with histogram suffixes (_bucket/_sum/_count) folded onto their
// declared family.
func (e *Exposition) Families() map[string]bool {
	out := make(map[string]bool)
	for _, s := range e.Samples {
		name := s.Name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && e.Types[base] == "histogram" {
				name = base
				break
			}
		}
		out[name] = true
	}
	return out
}

// ParseExposition validates a Prometheus text-format payload line by line —
// a lightweight parser for tests and the CI exposition check, not a full
// client. It enforces:
//
//   - every non-empty line is a comment (# HELP / # TYPE) or a sample,
//   - sample names and label keys are legal, label values are quoted,
//   - values parse as Go floats (including +Inf/NaN),
//   - a sample's family, when typed, was declared before its first sample,
//   - histogram families expose _bucket lines with an le label, a _sum,
//     and a _count whose value equals the +Inf bucket.
func ParseExposition(r io.Reader) (*Exposition, error) {
	exp := &Exposition{Types: make(map[string]string)}
	type histState struct {
		infBucket  float64
		haveInf    bool
		count      float64
		haveCount  bool
		haveSum    bool
		haveBucket bool
	}
	hists := make(map[string]*histState)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 3 && (fields[1] == "TYPE" || fields[1] == "HELP") {
				if !validName(fields[2]) {
					return nil, fmt.Errorf("line %d: invalid metric name %q in %s", lineNo, fields[2], fields[1])
				}
				if fields[1] == "TYPE" {
					if len(fields) != 4 {
						return nil, fmt.Errorf("line %d: TYPE line needs a type", lineNo)
					}
					exp.Types[fields[2]] = strings.TrimSpace(fields[3])
				}
			}
			continue
		}
		sample, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		exp.Samples = append(exp.Samples, sample)

		// Histogram bookkeeping keyed by (family, non-le labels).
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(sample.Name, suffix)
			if base == sample.Name || exp.Types[base] != "histogram" {
				continue
			}
			key := base + "{" + stripLabel(sample.Labels, "le") + "}"
			st := hists[key]
			if st == nil {
				st = &histState{}
				hists[key] = st
			}
			switch suffix {
			case "_bucket":
				st.haveBucket = true
				le := labelValue(sample.Labels, "le")
				if le == "" {
					return nil, fmt.Errorf("line %d: histogram bucket without le label", lineNo)
				}
				if le == "+Inf" {
					st.infBucket, st.haveInf = sample.Value, true
				}
			case "_sum":
				st.haveSum = true
			case "_count":
				st.count, st.haveCount = sample.Value, true
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for key, st := range hists {
		if !st.haveBucket || !st.haveInf || !st.haveSum || !st.haveCount {
			return nil, fmt.Errorf("histogram %s missing bucket/+Inf/sum/count lines", key)
		}
		if st.count != st.infBucket {
			return nil, fmt.Errorf("histogram %s count %v != +Inf bucket %v", key, st.count, st.infBucket)
		}
	}
	return exp, nil
}

// parseSampleLine splits `name{labels} value [timestamp]`.
func parseSampleLine(line string) (Sample, error) {
	name := line
	labels := ""
	rest := ""
	if i := strings.IndexByte(line, '{'); i >= 0 {
		name = line[:i]
		j := strings.IndexByte(line[i:], '}')
		if j < 0 {
			return Sample{}, fmt.Errorf("unterminated label set in %q", line)
		}
		labels = line[i+1 : i+j]
		rest = strings.TrimSpace(line[i+j+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return Sample{}, fmt.Errorf("sample line %q has no value", line)
		}
		name = fields[0]
		rest = strings.Join(fields[1:], " ")
	}
	if !validName(name) {
		return Sample{}, fmt.Errorf("invalid metric name %q", name)
	}
	if err := validateLabels(labels); err != nil {
		return Sample{}, err
	}
	valueField := strings.Fields(rest)
	if len(valueField) == 0 || len(valueField) > 2 {
		return Sample{}, fmt.Errorf("sample line %q has malformed value", line)
	}
	v, err := strconv.ParseFloat(valueField[0], 64)
	if err != nil {
		return Sample{}, fmt.Errorf("value %q: %w", valueField[0], err)
	}
	return Sample{Name: name, Labels: labels, Value: v}, nil
}

// validateLabels checks a rendered label body: k="v" pairs, comma
// separated, keys legal, values quoted.
func validateLabels(labels string) error {
	for _, pair := range splitLabelPairs(labels) {
		k, v, ok := strings.Cut(pair, "=")
		if !ok {
			return fmt.Errorf("label pair %q has no '='", pair)
		}
		if !validName(k) {
			return fmt.Errorf("invalid label name %q", k)
		}
		if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return fmt.Errorf("label value %s not quoted", v)
		}
	}
	return nil
}

// splitLabelPairs splits a rendered label body on commas outside quotes.
func splitLabelPairs(labels string) []string {
	if labels == "" {
		return nil
	}
	var out []string
	start, inQuote, escaped := 0, false, false
	for i := 0; i < len(labels); i++ {
		c := labels[i]
		switch {
		case escaped:
			escaped = false
		case c == '\\':
			escaped = true
		case c == '"':
			inQuote = !inQuote
		case c == ',' && !inQuote:
			out = append(out, labels[start:i])
			start = i + 1
		}
	}
	out = append(out, labels[start:])
	return out
}

// labelValue extracts one label's (unescaped-as-written) value from a
// rendered label body, or "".
func labelValue(labels, key string) string {
	for _, pair := range splitLabelPairs(labels) {
		k, v, ok := strings.Cut(pair, "=")
		if ok && k == key && len(v) >= 2 {
			return v[1 : len(v)-1]
		}
	}
	return ""
}

// stripLabel removes one key's pair from a rendered label body.
func stripLabel(labels, key string) string {
	var kept []string
	for _, pair := range splitLabelPairs(labels) {
		if k, _, ok := strings.Cut(pair, "="); ok && k == key {
			continue
		}
		kept = append(kept, pair)
	}
	return strings.Join(kept, ",")
}
