package telemetry

// Metric bundles: pre-registered instrument sets for the subsystems whose
// hot paths cannot afford registry lookups. Each bundle is built once
// (typically at engine construction) and handed down as a pointer; a nil
// bundle disables that subsystem's instrumentation entirely, which is what
// keeps the library usable — and the kernel benchmark numbers honest —
// outside the service.

// KernelMetrics is the Monte-Carlo kernel's instrument set. The kernel
// flushes per-worker probe counts into these once per chunk (never per
// trial), so steady-state trials stay allocation- and atomic-free.
type KernelMetrics struct {
	// Trials counts completed Monte-Carlo trials across all estimates.
	Trials *Counter
	// AllHealthy counts trials whose fault draw came up empty, taking the
	// all-healthy fast path that skips the matcher.
	AllHealthy *Counter
	// MatcherInvocations counts trials that reached a reconfiguration
	// feasibility decision (matching or column-cascade analysis).
	MatcherInvocations *Counter
	// MemoHits counts feasibility decisions served from the per-worker
	// fault-pattern memo without running the matcher; MemoMisses counts the
	// solver runs that populated it. Hits + misses stays below
	// MatcherInvocations on paths where memoization is unavailable (large
	// arrays) or disabled.
	MemoHits   *Counter
	MemoMisses *Counter
	// ChunkSeconds observes the wall time of each completed kernel chunk;
	// its Count is the number of chunks executed.
	ChunkSeconds *Histogram
	// EarlyStops counts precision-targeted estimates that met their epsilon
	// before exhausting the trial budget; RealizedRuns observes the realized
	// trial count of every precision-targeted estimate (early-stopped or
	// budget-exhausted), so the two together say how often and how hard
	// adaptive sampling pays off.
	EarlyStops   *Counter
	RealizedRuns *Histogram
}

// realizedRunsBuckets spans the realized-trial-count range from a single
// chunk to the MaxRuns service cap in decade-ish steps.
var realizedRunsBuckets = []float64{256, 1024, 4096, 16384, 65536, 262144, 1048576}

// NewKernelMetrics registers the kernel instrument set on r (nil r yields
// working, unregistered instruments).
func NewKernelMetrics(r *Registry) *KernelMetrics {
	return &KernelMetrics{
		Trials:             r.Counter("dmfb_kernel_trials_total", "Monte-Carlo trials completed."),
		AllHealthy:         r.Counter("dmfb_kernel_trials_all_healthy_total", "Trials that drew zero faults and skipped the matcher."),
		MatcherInvocations: r.Counter("dmfb_kernel_matcher_invocations_total", "Trials that reached a reconfiguration feasibility decision."),
		MemoHits:           r.Counter("dmfb_kernel_memo_hits_total", "Feasibility decisions served from the fault-pattern memo."),
		MemoMisses:         r.Counter("dmfb_kernel_memo_misses_total", "Feasibility memo misses that ran the matcher and populated the cache."),
		ChunkSeconds:       r.Histogram("dmfb_kernel_chunk_duration_seconds", "Wall time of one Monte-Carlo kernel chunk.", nil),
		EarlyStops:         r.Counter("dmfb_kernel_early_stops_total", "Precision-targeted estimates that met epsilon before the trial budget."),
		RealizedRuns:       r.Histogram("dmfb_kernel_realized_runs", "Realized trial count of one precision-targeted estimate.", realizedRunsBuckets),
	}
}

// SweepMetrics times per-point sweep evaluation by strategy × defect model.
type SweepMetrics struct {
	points *HistogramVec
}

// NewSweepMetrics registers the sweep instrument set on r.
func NewSweepMetrics(r *Registry) *SweepMetrics {
	return &SweepMetrics{
		points: r.HistogramVec("dmfb_sweep_point_duration_seconds",
			"Wall time of one sweep grid-point evaluation.", nil,
			"strategy", "defect_model"),
	}
}

// ObservePoint records one point evaluation. The underlying vec lookup is
// mutex-guarded; sweep points are millisecond-scale, so per-point lookup
// cost is noise.
func (m *SweepMetrics) ObservePoint(strategy, defectModel string, seconds float64) {
	if m == nil {
		return
	}
	m.points.With(strategy, defectModel).Observe(seconds)
}
