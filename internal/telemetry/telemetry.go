// Package telemetry is the dependency-free metrics and tracing substrate of
// the dmfb service stack. It provides three instrument kinds — monotonic
// Counters, settable Gauges, and fixed-bucket Histograms — whose hot paths
// are single atomic operations, safe to call from the zero-allocation
// Monte-Carlo kernel, plus a Registry that renders every registered series
// in the Prometheus text exposition format (served at GET /metrics).
//
// Design constraints, in priority order:
//
//  1. Hot-path cost: Counter.Add, Gauge.Set, and Histogram.Observe perform
//     no allocation and no locking — a handful of atomic ops at most — so
//     instrumenting a per-trial or per-chunk path cannot move the kernel's
//     allocation pins or its throughput cliff.
//  2. No dependencies: the package uses only the standard library, so it
//     can sit below every other internal package (yieldsim, sweep, service)
//     without import cycles or new modules.
//  3. Stable exposition: families and series render sorted, so /metrics
//     output is deterministic for a fixed set of registered series — which
//     is what makes the format testable with a golden-style test.
//
// Callers register instruments once (Registry get-or-creates by name +
// label set and returns the same instance for the same coordinates) and
// keep the returned handle; lookups are mutex-guarded and meant for setup
// or per-request paths, never per-trial ones. Vec variants (CounterVec,
// HistogramVec) cover small dynamic label spaces such as cache kinds or
// strategy × defect-model pairs.
//
// The package also carries the request-scoped trace ID (WithTraceID /
// TraceID): the HTTP middleware stores the X-Request-ID into the request
// context, and every layer below — engine, sweep evaluator, kernel chunk
// spans — reads it back with TraceID, which is how one ID connects an
// access-log line to the kernel chunks that served the request.
package telemetry

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is usable
// but unregistered; obtain registered counters from a Registry.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative to subtract).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into fixed cumulative buckets. Observe is
// lock- and allocation-free: one atomic add into the first bucket whose
// upper bound admits the value, one into the total count, and a CAS loop
// folding the value into the running sum.
type Histogram struct {
	bounds []float64 // strictly increasing upper bounds; +Inf is implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

// DurationBuckets is the default bucket layout for latency histograms, in
// seconds: 100µs to 10s, roughly exponential. Chunk latencies sit in the
// low milliseconds, point evaluations and admission waits anywhere up to
// seconds, so one layout serves all three.
var DurationBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 10,
}

// newHistogram builds a histogram over the given strictly increasing upper
// bounds (nil means DurationBuckets).
func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DurationBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram bounds not increasing at %d: %v", i, bounds))
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket counts are small (≤16) and the scan is branch-
	// predictable, beating binary search at this size.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// metricKind tags a family's instrument type.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Label is one key="value" pair of a series.
type Label struct {
	Key, Value string
}

// L is shorthand for one label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// series is one registered time series: its rendered label signature plus
// the value source (exactly one of the fields is set).
type series struct {
	labels  string // rendered `k="v",k2="v2"` signature, keys sorted
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	// fn supplies the value of callback series (counterFunc/gaugeFunc) at
	// scrape time, reading state the owner already maintains.
	fn func() float64
}

// family groups the series of one metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	series map[string]*series // label signature → series
}

// Registry holds named metric families and renders them in the Prometheus
// text format. Get-or-create registration is idempotent: the same name and
// label set always return the same instrument instance. A nil *Registry is
// valid everywhere and registers nothing, returning unregistered (but
// usable) instruments, so instrumented code needs no nil checks.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// validName reports whether name is a legal Prometheus metric or label
// name: [a-zA-Z_:][a-zA-Z0-9_:]* (colons for metrics only; we accept them
// for both, which is harmless here).
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// renderLabels builds the canonical signature `k="v",k2="v2"` with keys
// sorted; values are escaped per the exposition format.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if !validName(l.Key) {
			panic(fmt.Sprintf("telemetry: invalid label name %q", l.Key))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue escapes backslash, double quote, and newline as the
// exposition format requires.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// getOrCreate returns the series for (name, labels), creating family and
// series via mk on first sight. Panics on a kind conflict — that is a
// programming error, not a runtime condition.
func (r *Registry) getOrCreate(name, help string, kind metricKind, labels []Label, mk func() *series) *series {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	sig := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as %s, was %s", name, kind, f.kind))
	}
	s, ok := f.series[sig]
	if !ok {
		s = mk()
		s.labels = sig
		f.series[sig] = s
	}
	return s
}

// Counter returns the registered counter for (name, labels), creating it on
// first use. A nil registry returns an unregistered counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return &Counter{}
	}
	s := r.getOrCreate(name, help, kindCounter, labels, func() *series {
		return &series{counter: &Counter{}}
	})
	return s.counter
}

// Gauge returns the registered gauge for (name, labels).
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return &Gauge{}
	}
	s := r.getOrCreate(name, help, kindGauge, labels, func() *series {
		return &series{gauge: &Gauge{}}
	})
	return s.gauge
}

// Histogram returns the registered histogram for (name, labels) with the
// given bucket upper bounds (nil means DurationBuckets). Bounds are fixed
// at first registration; later calls with the same coordinates return the
// existing histogram regardless of the bounds argument.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return newHistogram(bounds)
	}
	s := r.getOrCreate(name, help, kindHistogram, labels, func() *series {
		return &series{hist: newHistogram(bounds)}
	})
	return s.hist
}

// CounterFunc registers a callback counter: fn is read at scrape time, so
// subsystems that already maintain an atomic total (engine completions,
// job counters) expose it without double bookkeeping. fn must be monotonic
// and safe for concurrent use.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.getOrCreate(name, help, kindCounter, labels, func() *series {
		return &series{fn: fn}
	})
}

// GaugeFunc registers a callback gauge, read at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.getOrCreate(name, help, kindGauge, labels, func() *series {
		return &series{fn: fn}
	})
}

// CounterVec is a family of counters over one set of label keys, for small
// dynamic label spaces (cache kinds, HTTP status codes). With() is
// mutex-guarded — cache the returned handle on hot paths.
type CounterVec struct {
	r         *Registry
	name      string
	help      string
	labelKeys []string
	children  sync.Map // child key → *Counter
}

// CounterVec returns a counter family with the given label keys.
func (r *Registry) CounterVec(name, help string, labelKeys ...string) *CounterVec {
	return &CounterVec{r: r, name: name, help: help, labelKeys: labelKeys}
}

// With returns the counter at the given label values (matching the vec's
// keys positionally). Children are cached in the vec, so a repeated With on
// a hot path (per cache lookup, per sweep point) is one lock-free map read
// rather than a trip through the registry mutex — though keeping the
// returned handle is still cheaper.
func (v *CounterVec) With(labelValues ...string) *Counter {
	key := childKey(labelValues)
	if c, ok := v.children.Load(key); ok {
		return c.(*Counter)
	}
	c := v.r.Counter(v.name, v.help, zip(v.labelKeys, labelValues)...)
	actual, _ := v.children.LoadOrStore(key, c)
	return actual.(*Counter)
}

// HistogramVec is a family of histograms over one set of label keys.
type HistogramVec struct {
	r         *Registry
	name      string
	help      string
	bounds    []float64
	labelKeys []string
	children  sync.Map // child key → *Histogram
}

// HistogramVec returns a histogram family with the given label keys and
// bucket bounds (nil means DurationBuckets).
func (r *Registry) HistogramVec(name, help string, bounds []float64, labelKeys ...string) *HistogramVec {
	return &HistogramVec{r: r, name: name, help: help, bounds: bounds, labelKeys: labelKeys}
}

// With returns the histogram at the given label values, cached like
// CounterVec.With.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	key := childKey(labelValues)
	if h, ok := v.children.Load(key); ok {
		return h.(*Histogram)
	}
	h := v.r.Histogram(v.name, v.help, v.bounds, zip(v.labelKeys, labelValues)...)
	actual, _ := v.children.LoadOrStore(key, h)
	return actual.(*Histogram)
}

// childKey folds label values into one map key. The single-value case —
// every per-request vec in the service — avoids the join allocation.
func childKey(values []string) string {
	if len(values) == 1 {
		return values[0]
	}
	return strings.Join(values, "\x1f")
}

// zip pairs keys with values; a count mismatch is a programming error.
func zip(keys, values []string) []Label {
	if len(keys) != len(values) {
		panic(fmt.Sprintf("telemetry: %d label values for keys %v", len(values), keys))
	}
	ls := make([]Label, len(keys))
	for i := range keys {
		ls[i] = Label{Key: keys[i], Value: values[i]}
	}
	return ls
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered family in the text exposition
// format (version 0.0.4), families and series in sorted order so the output
// is deterministic for a fixed registration set.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	// Snapshot the series lists under the lock; values are read atomically
	// afterwards (callback series invoke fn outside the registry lock, so a
	// callback may itself take subsystem locks without ordering hazards).
	type familySnap struct {
		f      *family
		series []*series
	}
	snaps := make([]familySnap, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		sigs := make([]string, 0, len(f.series))
		for sig := range f.series {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		ss := make([]*series, 0, len(sigs))
		for _, sig := range sigs {
			ss = append(ss, f.series[sig])
		}
		snaps = append(snaps, familySnap{f: f, series: ss})
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, snap := range snaps {
		f := snap.f
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range snap.series {
			writeSeries(&b, f, s)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeSeries renders one series' sample lines.
func writeSeries(b *strings.Builder, f *family, s *series) {
	name := func(suffix, extraLabels string) string {
		var sb strings.Builder
		sb.WriteString(f.name)
		sb.WriteString(suffix)
		if s.labels != "" || extraLabels != "" {
			sb.WriteByte('{')
			sb.WriteString(s.labels)
			if s.labels != "" && extraLabels != "" {
				sb.WriteByte(',')
			}
			sb.WriteString(extraLabels)
			sb.WriteByte('}')
		}
		return sb.String()
	}
	switch {
	case s.counter != nil:
		fmt.Fprintf(b, "%s %s\n", name("", ""), formatValue(float64(s.counter.Value())))
	case s.gauge != nil:
		fmt.Fprintf(b, "%s %s\n", name("", ""), formatValue(float64(s.gauge.Value())))
	case s.fn != nil:
		fmt.Fprintf(b, "%s %s\n", name("", ""), formatValue(s.fn()))
	case s.hist != nil:
		h := s.hist
		// Cumulative bucket counts; the +Inf bucket equals the total count.
		var cum uint64
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			fmt.Fprintf(b, "%s %d\n", name("_bucket", `le="`+formatValue(bound)+`"`), cum)
		}
		cum += h.counts[len(h.bounds)].Load()
		fmt.Fprintf(b, "%s %d\n", name("_bucket", `le="+Inf"`), cum)
		fmt.Fprintf(b, "%s %s\n", name("_sum", ""), formatValue(h.Sum()))
		fmt.Fprintf(b, "%s %d\n", name("_count", ""), h.count.Load())
	}
}

// Handler serves the registry in the Prometheus text format — the body of
// GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// traceIDKey is the context key of the request-scoped trace ID.
type traceIDKey struct{}

// WithTraceID returns a context carrying the trace ID (typically the
// sanitized X-Request-ID the HTTP middleware assigned or echoed).
func WithTraceID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, traceIDKey{}, id)
}

// TraceID returns the context's trace ID, or "" when none was attached.
func TraceID(ctx context.Context) string {
	id, _ := ctx.Value(traceIDKey{}).(string)
	return id
}
