package telemetry

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestCounterGaugeHistogramConcurrent hammers every instrument kind from
// many goroutines; under `go test -race` (the CI default) this proves the
// hot paths are data-race free, and the totals prove no increment is lost.
func TestCounterGaugeHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_counter_total", "test")
	g := r.Gauge("t_gauge", "test")
	h := r.Histogram("t_hist_seconds", "test", []float64{0.001, 0.01, 0.1})
	vec := r.CounterVec("t_vec_total", "test", "kind")

	const workers, perWorker = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			kind := []string{"a", "b"}[w%2]
			vc := vec.With(kind)
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i%200) / 1000.0)
				vc.Inc()
			}
		}()
	}
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	// Each worker observes sum_{i<10000} (i mod 200)/1000 = 50*199/100*10...
	// compute directly instead:
	var wantSum float64
	for i := 0; i < perWorker; i++ {
		wantSum += float64(i%200) / 1000.0
	}
	wantSum *= workers
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6*wantSum {
		t.Errorf("histogram sum = %v, want %v", got, wantSum)
	}
	if a, b := vec.With("a").Value(), vec.With("b").Value(); a+b != workers*perWorker {
		t.Errorf("vec totals %d+%d != %d", a, b, workers*perWorker)
	}
}

// TestRegistryGetOrCreateIdempotent pins the registration contract: equal
// coordinates return the same instance, different labels different ones.
func TestRegistryGetOrCreateIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x", L("k", "v"))
	b := r.Counter("x_total", "x", L("k", "v"))
	if a != b {
		t.Error("same coordinates returned distinct counters")
	}
	c := r.Counter("x_total", "x", L("k", "w"))
	if a == c {
		t.Error("distinct labels returned the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("kind conflict did not panic")
		}
	}()
	r.Gauge("x_total", "x")
}

// TestNilRegistryIsUsable pins the nil-registry convenience: instruments
// work, exposition writes nothing, no panics anywhere.
func TestNilRegistryIsUsable(t *testing.T) {
	var r *Registry
	c := r.Counter("n_total", "n")
	c.Inc()
	if c.Value() != 1 {
		t.Error("nil-registry counter broken")
	}
	r.Histogram("n_seconds", "n", nil).Observe(0.5)
	r.CounterFunc("n_fn", "n", func() float64 { return 1 })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Errorf("nil registry exposition: %q, %v", sb.String(), err)
	}
	km := NewKernelMetrics(nil)
	km.Trials.Add(5)
	var sm *SweepMetrics
	sm.ObservePoint("local", "independent", 0.1) // nil bundle is a no-op
}

// TestWritePrometheusFormat locks the exposition down: deterministic
// ordering, histogram bucket cumulativeness, escaping — verified both
// against exact expected text and by round-tripping through the package's
// own parser.
func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_requests_total", "Requests served.", L("code", "200")).Add(3)
	r.Counter("z_requests_total", "Requests served.", L("code", "500")).Add(1)
	r.Gauge("z_temp", "A gauge.").Set(-2)
	h := r.Histogram("z_lat_seconds", "A histogram.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.GaugeFunc("a_fn", "Callback gauge.", func() float64 { return 7.5 })
	r.Counter("esc_total", "Escapes.", L("path", `a"b\c`)).Inc()

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := `# HELP a_fn Callback gauge.
# TYPE a_fn gauge
a_fn 7.5
# HELP esc_total Escapes.
# TYPE esc_total counter
esc_total{path="a\"b\\c"} 1
# HELP z_lat_seconds A histogram.
# TYPE z_lat_seconds histogram
z_lat_seconds_bucket{le="0.1"} 1
z_lat_seconds_bucket{le="1"} 2
z_lat_seconds_bucket{le="+Inf"} 3
z_lat_seconds_sum 5.55
z_lat_seconds_count 3
# HELP z_requests_total Requests served.
# TYPE z_requests_total counter
z_requests_total{code="200"} 3
z_requests_total{code="500"} 1
# HELP z_temp A gauge.
# TYPE z_temp gauge
z_temp -2
`
	if got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	exp, err := ParseExposition(strings.NewReader(got))
	if err != nil {
		t.Fatalf("own exposition does not parse: %v", err)
	}
	fams := exp.Families()
	for _, name := range []string{"a_fn", "esc_total", "z_lat_seconds", "z_requests_total", "z_temp"} {
		if !fams[name] {
			t.Errorf("family %s missing from parse: %v", name, fams)
		}
	}
	if exp.Types["z_lat_seconds"] != "histogram" {
		t.Errorf("z_lat_seconds type = %q", exp.Types["z_lat_seconds"])
	}
}

// TestParseExpositionRejectsMalformed drives the validator over the
// malformed payloads the CI exposition check exists to catch.
func TestParseExpositionRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad name":          "9bad_name 1\n",
		"no value":          "good_name\n",
		"bad value":         "good_name one\n",
		"unterminated":      "good_name{a=\"b\" 1\n",
		"unquoted label":    "good_name{a=b} 1\n",
		"bad label name":    "good_name{9a=\"b\"} 1\n",
		"bucket without le": "# TYPE h histogram\nh_bucket 1\nh_sum 0\nh_count 1\n",
		"count mismatch": "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\n" +
			"h_sum 1\nh_count 3\n",
		"histogram missing sum": "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
	}
	for name, payload := range cases {
		if _, err := ParseExposition(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: parsed without error:\n%s", name, payload)
		}
	}
}

// TestHistogramBuckets pins bucket assignment at the boundaries: le is an
// upper (inclusive) bound.
func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(1)   // le="1"
	h.Observe(1.5) // le="2"
	h.Observe(2)   // le="2"
	h.Observe(3)   // +Inf
	if got := h.counts[0].Load(); got != 1 {
		t.Errorf("bucket le=1 count = %d, want 1", got)
	}
	if got := h.counts[1].Load(); got != 2 {
		t.Errorf("bucket le=2 count = %d, want 2", got)
	}
	if got := h.counts[2].Load(); got != 1 {
		t.Errorf("+Inf bucket count = %d, want 1", got)
	}
}

// TestInstrumentHotPathsZeroAlloc pins the instrument hot paths to zero
// allocations — the property that lets the kernel flush counters per chunk
// without moving its allocation pins.
func TestInstrumentHotPathsZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_total", "x")
	g := r.Gauge("alloc_gauge", "x")
	h := r.Histogram("alloc_seconds", "x", nil)
	if n := testing.AllocsPerRun(200, func() {
		c.Add(2)
		g.Set(3)
		h.Observe(0.004)
	}); n != 0 {
		t.Errorf("instrument hot path allocates %.1f per run, want 0", n)
	}
}

// TestTraceIDRoundTrip pins the context plumbing the middleware and kernel
// spans share.
func TestTraceIDRoundTrip(t *testing.T) {
	ctx := context.Background()
	if got := TraceID(ctx); got != "" {
		t.Errorf("empty context trace ID = %q", got)
	}
	ctx = WithTraceID(ctx, "req-9")
	if got := TraceID(ctx); got != "req-9" {
		t.Errorf("trace ID = %q, want req-9", got)
	}
	if got := TraceID(WithTraceID(context.Background(), "")); got != "" {
		t.Errorf("blank trace ID stored: %q", got)
	}
}
