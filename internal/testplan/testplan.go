// Package testplan implements the test methodology the paper builds on
// (refs [10, 11]): stimulus droplets containing a conducting fluid (e.g. a
// KCl solution) are dispensed from a source reservoir and driven across the
// array; a droplet that completes its route in the expected time proves the
// route fault-free, while a stuck droplet reveals a fault on it. Adaptive
// binary search over route prefixes localizes faulty cells, and the
// localization output feeds the reconfiguration engine.
//
// The planner produces coverage walks (every cell visited at least once,
// consecutive cells adjacent, starting at the source) and the session
// simulates test passes against a ground-truth fault set that the diagnosis
// procedure can only observe through droplet arrivals.
package testplan

import (
	"fmt"
	"sort"

	"dmfb/internal/defects"
	"dmfb/internal/layout"
)

// Plan is a test stimulus route: a walk over the array in which consecutive
// cells are adjacent. Cells may repeat (the droplet may backtrack).
type Plan struct {
	Path []layout.CellID
}

// Covers returns the distinct cells on the path, ascending.
func (p Plan) Covers() []layout.CellID {
	seen := make(map[layout.CellID]bool, len(p.Path))
	var out []layout.CellID
	for _, c := range p.Path {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Validate checks the adjacency invariant.
func (p Plan) Validate(arr *layout.Array) error {
	if len(p.Path) == 0 {
		return fmt.Errorf("testplan: empty path")
	}
	for i := 1; i < len(p.Path); i++ {
		a, b := p.Path[i-1], p.Path[i]
		if a == b {
			continue
		}
		adjacent := false
		for _, nb := range arr.Neighbors(a) {
			if nb == b {
				adjacent = true
				break
			}
		}
		if !adjacent {
			return fmt.Errorf("testplan: step %d jumps %d -> %d", i, a, b)
		}
	}
	return nil
}

// CoverageWalk builds a walk from the source visiting every cell of the
// array at least once by depth-first traversal with backtracking (each tree
// edge is walked at most twice). It requires a connected array.
func CoverageWalk(arr *layout.Array, source layout.CellID) (Plan, error) {
	if arr.NumCells() == 0 {
		return Plan{}, fmt.Errorf("testplan: empty array")
	}
	if source < 0 || int(source) >= arr.NumCells() {
		return Plan{}, fmt.Errorf("testplan: source %d out of range", source)
	}
	visited := make([]bool, arr.NumCells())
	var path []layout.CellID
	var dfs func(id layout.CellID)
	dfs = func(id layout.CellID) {
		visited[id] = true
		path = append(path, id)
		nbrs := append([]layout.CellID(nil), arr.Neighbors(id)...)
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
		for _, nb := range nbrs {
			if !visited[nb] {
				dfs(nb)
				path = append(path, id) // backtrack
			}
		}
	}
	dfs(source)
	for i, v := range visited {
		if !v {
			return Plan{}, fmt.Errorf("testplan: array disconnected at cell %d", i)
		}
	}
	return Plan{Path: path}, nil
}

// Diagnosis is the outcome of a test session.
type Diagnosis struct {
	// Faulty lists the cells the session identified as faulty, ascending.
	Faulty []layout.CellID
	// Unreachable lists cells that could not be tested because every route
	// from the source passes through identified faulty cells.
	Unreachable []layout.CellID
	// TestDroplets counts the stimulus droplets consumed.
	TestDroplets int
	// Complete reports whether every cell was either verified or diagnosed
	// (no unreachable cells).
	Complete bool
}

// Session runs adaptive fault localization against a hidden ground truth.
type Session struct {
	arr    *layout.Array
	truth  *defects.FaultSet
	source layout.CellID
	tests  int
}

// NewSession prepares a test session. Stimulus droplets enter at source;
// truth is the hidden fault state the procedure must discover.
func NewSession(arr *layout.Array, truth *defects.FaultSet, source layout.CellID) (*Session, error) {
	if truth == nil {
		return nil, fmt.Errorf("testplan: nil ground truth")
	}
	if truth.NumCells() != arr.NumCells() {
		return nil, fmt.Errorf("testplan: fault set sized %d, array %d", truth.NumCells(), arr.NumCells())
	}
	if source < 0 || int(source) >= arr.NumCells() {
		return nil, fmt.Errorf("testplan: source %d out of range", source)
	}
	return &Session{arr: arr, truth: truth, source: source}, nil
}

// TestDropletsUsed returns the number of stimulus droplets released so far.
func (s *Session) TestDropletsUsed() int { return s.tests }

// traverse releases a stimulus droplet along path[0..k] (inclusive) and
// reports whether it arrives — i.e. whether every cell of the prefix is
// fault-free. This is the only ground-truth access the procedure has.
func (s *Session) traverse(path []layout.CellID, k int) bool {
	s.tests++
	for i := 0; i <= k && i < len(path); i++ {
		if s.truth.IsFaulty(path[i]) {
			return false
		}
	}
	return true
}

// locateFirst finds the index of the first faulty cell within path[lo..hi]
// (caller guarantees a fault exists at or before hi) using binary search
// over prefix traversals: O(log n) droplets per fault.
func (s *Session) locateFirst(path []layout.CellID, lo, hi int) int {
	for lo < hi {
		mid := (lo + hi) / 2
		if s.traverse(path, mid) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Run performs complete adaptive localization: it walks coverage plans from
// the source, binary-searches each failure, masks the found fault, and
// re-plans around all known faults until every cell still reachable from
// the source is verified.
func (s *Session) Run() (Diagnosis, error) {
	var diag Diagnosis
	known := make(map[layout.CellID]bool)    // diagnosed faulty
	verified := make(map[layout.CellID]bool) // proven fault-free

	for {
		plan, reach := s.planAround(known)
		if plan == nil {
			break // source itself diagnosed faulty
		}
		_ = reach // cells outside reach stay unverified and classify below
		path := plan.Path
		if s.traverse(path, len(path)-1) {
			for _, c := range path {
				verified[c] = true
			}
			break
		}
		idx := s.locateFirst(path, 0, len(path)-1)
		known[path[idx]] = true
		for i := 0; i < idx; i++ {
			verified[path[i]] = true
		}
	}

	// Classify the leftovers.
	for i := 0; i < s.arr.NumCells(); i++ {
		id := layout.CellID(i)
		if !known[id] && !verified[id] {
			diag.Unreachable = append(diag.Unreachable, id)
		}
	}
	for id := range known {
		diag.Faulty = append(diag.Faulty, id)
	}
	sort.Slice(diag.Faulty, func(i, j int) bool { return diag.Faulty[i] < diag.Faulty[j] })
	diag.TestDroplets = s.tests
	diag.Complete = len(diag.Unreachable) == 0
	return diag, nil
}

// planAround builds a coverage walk from the source over cells not yet
// diagnosed faulty. It returns nil when the source itself is diagnosed, and
// the reachability set otherwise.
func (s *Session) planAround(known map[layout.CellID]bool) (*Plan, map[layout.CellID]bool) {
	if known[s.source] {
		return nil, nil
	}
	visited := make(map[layout.CellID]bool)
	var path []layout.CellID
	var dfs func(id layout.CellID)
	dfs = func(id layout.CellID) {
		visited[id] = true
		path = append(path, id)
		nbrs := append([]layout.CellID(nil), s.arr.Neighbors(id)...)
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
		for _, nb := range nbrs {
			if !visited[nb] && !known[nb] {
				dfs(nb)
				path = append(path, id)
			}
		}
	}
	dfs(s.source)
	return &Plan{Path: path}, visited
}

// VerifyDiagnosis cross-checks a diagnosis against the ground truth: every
// reported fault must be real, and every real fault must be either reported
// or unreachable. Returns nil when the diagnosis is sound.
func VerifyDiagnosis(arr *layout.Array, truth *defects.FaultSet, diag Diagnosis) error {
	reported := make(map[layout.CellID]bool, len(diag.Faulty))
	for _, id := range diag.Faulty {
		if !truth.IsFaulty(id) {
			return fmt.Errorf("testplan: false positive at cell %d", id)
		}
		reported[id] = true
	}
	unreachable := make(map[layout.CellID]bool, len(diag.Unreachable))
	for _, id := range diag.Unreachable {
		unreachable[id] = true
	}
	for _, id := range truth.FaultyCells() {
		if !reported[id] && !unreachable[id] {
			return fmt.Errorf("testplan: missed fault at cell %d", id)
		}
	}
	return nil
}
