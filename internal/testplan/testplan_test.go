package testplan

import (
	"math/rand"
	"testing"

	"dmfb/internal/defects"
	"dmfb/internal/layout"
)

func buildArray(t testing.TB) *layout.Array {
	t.Helper()
	arr, err := layout.BuildParallelogram(layout.DTMB26(), 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	return arr
}

func TestCoverageWalkVisitsEveryCell(t *testing.T) {
	arr := buildArray(t)
	plan, err := CoverageWalk(arr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(arr); err != nil {
		t.Fatal(err)
	}
	if got := len(plan.Covers()); got != arr.NumCells() {
		t.Errorf("covered %d of %d cells", got, arr.NumCells())
	}
	// DFS walk length is bounded by 2·cells.
	if len(plan.Path) > 2*arr.NumCells() {
		t.Errorf("walk length %d exceeds 2n", len(plan.Path))
	}
}

func TestCoverageWalkValidation(t *testing.T) {
	arr := buildArray(t)
	if _, err := CoverageWalk(arr, -1); err == nil {
		t.Error("negative source accepted")
	}
	if _, err := CoverageWalk(arr, layout.CellID(arr.NumCells())); err == nil {
		t.Error("out-of-range source accepted")
	}
}

func TestPlanValidateRejectsJumps(t *testing.T) {
	arr := buildArray(t)
	bad := Plan{Path: []layout.CellID{0, layout.CellID(arr.NumCells() - 1)}}
	if err := bad.Validate(arr); err == nil {
		t.Error("jumping plan accepted")
	}
	if err := (Plan{}).Validate(arr); err == nil {
		t.Error("empty plan accepted")
	}
}

func TestSessionValidation(t *testing.T) {
	arr := buildArray(t)
	fs := defects.NewFaultSet(arr.NumCells())
	if _, err := NewSession(arr, nil, 0); err == nil {
		t.Error("nil truth accepted")
	}
	if _, err := NewSession(arr, defects.NewFaultSet(3), 0); err == nil {
		t.Error("mismatched truth accepted")
	}
	if _, err := NewSession(arr, fs, -1); err == nil {
		t.Error("bad source accepted")
	}
}

func TestCleanArrayOneDroplet(t *testing.T) {
	arr := buildArray(t)
	fs := defects.NewFaultSet(arr.NumCells())
	s, err := NewSession(arr, fs, 0)
	if err != nil {
		t.Fatal(err)
	}
	diag, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(diag.Faulty) != 0 || !diag.Complete {
		t.Errorf("clean chip diagnosis %+v", diag)
	}
	if diag.TestDroplets != 1 {
		t.Errorf("clean chip should need one droplet, used %d", diag.TestDroplets)
	}
	if err := VerifyDiagnosis(arr, fs, diag); err != nil {
		t.Error(err)
	}
}

func TestSingleFaultLocalized(t *testing.T) {
	arr := buildArray(t)
	fs := defects.NewFaultSet(arr.NumCells())
	target := layout.CellID(arr.NumCells() / 2)
	fs.MarkFaulty(target)
	s, err := NewSession(arr, fs, 0)
	if err != nil {
		t.Fatal(err)
	}
	diag, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(diag.Faulty) != 1 || diag.Faulty[0] != target {
		t.Fatalf("diagnosis %v, want [%d]", diag.Faulty, target)
	}
	if err := VerifyDiagnosis(arr, fs, diag); err != nil {
		t.Error(err)
	}
	// Binary search: O(log path) droplets, far fewer than one per cell.
	if diag.TestDroplets > 25 {
		t.Errorf("used %d droplets for one fault", diag.TestDroplets)
	}
}

func TestFaultySourceMakesArrayUntestable(t *testing.T) {
	arr := buildArray(t)
	fs := defects.NewFaultSet(arr.NumCells())
	fs.MarkFaulty(0)
	s, err := NewSession(arr, fs, 0)
	if err != nil {
		t.Fatal(err)
	}
	diag, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(diag.Faulty) != 1 || diag.Faulty[0] != 0 {
		t.Errorf("source fault not diagnosed: %v", diag.Faulty)
	}
	if diag.Complete {
		t.Error("chip with dead source cannot be completely tested")
	}
	if len(diag.Unreachable) != arr.NumCells()-1 {
		t.Errorf("%d unreachable, want %d", len(diag.Unreachable), arr.NumCells()-1)
	}
	if err := VerifyDiagnosis(arr, fs, diag); err != nil {
		t.Error(err)
	}
}

func TestRandomFaultPatternsAlwaysSoundDiagnosis(t *testing.T) {
	arr := buildArray(t)
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 40; trial++ {
		fs := defects.NewFaultSet(arr.NumCells())
		m := rng.Intn(12)
		for i := 0; i < m; i++ {
			fs.MarkFaulty(layout.CellID(rng.Intn(arr.NumCells())))
		}
		// Keep the source alive in most trials so the walk makes progress.
		s, err := NewSession(arr, fs, 0)
		if err != nil {
			t.Fatal(err)
		}
		diag, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyDiagnosis(arr, fs, diag); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Droplet budget: one full pass plus O(log n) per fault.
		budget := 2 + (fs.Count()+1)*20
		if diag.TestDroplets > budget {
			t.Errorf("trial %d: %d droplets for %d faults", trial, diag.TestDroplets, fs.Count())
		}
	}
}

func TestDiagnosisFeedsReconfiguration(t *testing.T) {
	// End-to-end: diagnose, then check the diagnosed set equals ground
	// truth when everything is reachable.
	arr := buildArray(t)
	fs := defects.NewFaultSet(arr.NumCells())
	for _, id := range []layout.CellID{5, 17, 44} {
		fs.MarkFaulty(id)
	}
	s, err := NewSession(arr, fs, 0)
	if err != nil {
		t.Fatal(err)
	}
	diag, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !diag.Complete {
		t.Fatalf("expected complete diagnosis, unreachable: %v", diag.Unreachable)
	}
	if len(diag.Faulty) != 3 {
		t.Errorf("diagnosed %v", diag.Faulty)
	}
	if err := VerifyDiagnosis(arr, fs, diag); err != nil {
		t.Error(err)
	}
}

func TestVerifyDiagnosisCatchesLies(t *testing.T) {
	arr := buildArray(t)
	fs := defects.NewFaultSet(arr.NumCells())
	fs.MarkFaulty(9)
	// False positive.
	if err := VerifyDiagnosis(arr, fs, Diagnosis{Faulty: []layout.CellID{3}}); err == nil {
		t.Error("false positive accepted")
	}
	// Missed fault.
	if err := VerifyDiagnosis(arr, fs, Diagnosis{}); err == nil {
		t.Error("missed fault accepted")
	}
	// Missed but unreachable is fine.
	if err := VerifyDiagnosis(arr, fs, Diagnosis{Unreachable: []layout.CellID{9}}); err != nil {
		t.Errorf("unreachable fault rejected: %v", err)
	}
}

func BenchmarkDiagnose10Faults(b *testing.B) {
	arr, err := layout.BuildParallelogram(layout.DTMB26(), 14, 25)
	if err != nil {
		b.Fatal(err)
	}
	in := defects.NewInjector(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs, err := in.FixedCount(arr, 10, defects.AllCells, nil)
		if err != nil {
			b.Fatal(err)
		}
		s, err := NewSession(arr, fs, 0)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
