package yieldsim

// Precision-targeted adaptive sampling: the chunk-seeded Monte-Carlo kernel
// with a sequential stopping rule layered on top. The scheduler is unchanged
// — fixed-size chunks, each owning a PRNG stream derived from Seed, pulled
// by a bounded worker pool — but instead of running a fixed trial count the
// kernel commits completed chunks in chunk-INDEX order (not completion
// order) and, at every committed boundary, asks whether the Wilson 95%
// half-width of the running estimate has reached Epsilon.
//
// Committing in index order is what preserves the determinism contract from
// the fixed-run kernel: the per-chunk success counts are functions of the
// chunk seeds alone, so the first boundary at which the rule fires — and
// with it the realized trial count and the estimate — is a pure function of
// (Seed, Epsilon, MaxRuns, ChunkSize). Worker count and goroutine
// scheduling only decide how many chunks beyond the stopping boundary were
// speculatively computed and discarded, never what the estimate is. That
// keeps adaptive results exactly as cacheable as fixed-run results.

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"dmfb/internal/defects"
	"dmfb/internal/stats"
	"dmfb/internal/telemetry"
)

// budget resolves the adaptive trial budget: MaxRuns, falling back to Runs.
func (mc *MonteCarlo) budget() int {
	if mc.MaxRuns > 0 {
		return mc.MaxRuns
	}
	return mc.Runs
}

// adaptiveState is the shared commit ledger of one adaptive estimate. All
// fields are guarded by mu; workers record each finished chunk and then
// advance the committed prefix while it is contiguous, testing the stopping
// rule at every boundary they fold in.
type adaptiveState struct {
	mu   sync.Mutex
	succ []int  // per-chunk success counts
	done []bool // per-chunk completion flags
	// committed is the length of the committed prefix; chunks [0, committed)
	// are folded into cumS/cumT.
	committed  int
	cumS, cumT int
	// stopped is set at the first committed boundary satisfying the rule;
	// finalS/finalT freeze the estimate at that boundary (later-arriving
	// chunks, whatever their index, are discarded).
	stopped        bool
	finalS, finalT int
}

// record stores chunk c's outcome and extends the committed prefix in index
// order, evaluating rule at each boundary folded in. It returns true once
// the estimate is frozen, which tells the calling worker to stop pulling
// chunks. chunkRuns maps a chunk index to its trial count (the last chunk
// is short when the budget is not a chunk multiple).
func (st *adaptiveState) record(c, successes int, rule stats.SequentialCI, chunkRuns func(int) int, stop func()) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.succ[c], st.done[c] = successes, true
	for !st.stopped && st.committed < len(st.done) && st.done[st.committed] {
		b := st.committed
		st.cumS += st.succ[b]
		st.cumT += chunkRuns(b)
		st.committed++
		if rule.Satisfied(st.cumS, st.cumT) {
			st.stopped = true
			st.finalS, st.finalT = st.cumS, st.cumT
			stop()
		}
	}
	return st.stopped
}

// runAdaptive is the Epsilon > 0 body of run: identical chunk seeding and
// worker discipline, with the sequential stopping rule over the committed
// prefix deciding when to quit. See the package comment above for why the
// result is bit-deterministic regardless of parallelism.
func (mc *MonteCarlo) runAdaptive(ctx context.Context, factory trialFactory) (Result, error) {
	budget := mc.budget()
	if budget <= 0 {
		return Result{}, fmt.Errorf("yieldsim: adaptive sampling needs a positive trial budget (MaxRuns or Runs), got %d", budget)
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	rule := stats.SequentialCI{Epsilon: mc.Epsilon}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	chunk := mc.chunkSize()
	numChunks := (budget + chunk - 1) / chunk
	chunkRuns := func(c int) int {
		if c == numChunks-1 {
			return budget - c*chunk
		}
		return chunk
	}
	seeds := stats.SeedStream(mc.Seed, numChunks)
	workers := mc.workerCount()
	if workers > numChunks {
		workers = numChunks
	}

	// The producer hands out chunk indexes in strictly increasing order, so
	// when the rule fires at a boundary every chunk at or before it has been
	// handed out and completed; cancelling here only abandons chunks past
	// the frozen prefix.
	chunkCh := make(chan int)
	go func() {
		defer close(chunkCh)
		for c := 0; c < numChunks; c++ {
			select {
			case chunkCh <- c:
			case <-runCtx.Done():
				return
			}
		}
	}()

	spanLog := mc.Logger != nil && mc.Logger.Enabled(ctx, slog.LevelDebug)
	instrumented := mc.Metrics != nil || spanLog
	traceID := telemetry.TraceID(ctx)

	st := &adaptiveState{succ: make([]int, numChunks), done: make([]bool, numChunks)}
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var probe kernelProbe
			program, err := factory(&probe)
			if err != nil {
				errCh <- err
				cancel()
				return
			}
			in := defects.NewInjector(0) // reseeded per chunk below
			for c := range chunkCh {
				if runCtx.Err() != nil {
					break
				}
				runs := chunkRuns(c)
				in.Reseed(seeds[c])
				var chunkStart time.Time
				if instrumented {
					chunkStart = time.Now()
				}
				chunkSuccesses := 0
				if program.batch != nil {
					chunkSuccesses, err = program.batch(in, runs)
					if err != nil {
						errCh <- err
						cancel()
						return
					}
				} else {
					for i := 0; i < runs; i++ {
						ok, err := program.trial(in)
						if err != nil {
							errCh <- err
							cancel()
							return
						}
						if ok {
							chunkSuccesses++
						}
					}
				}
				if instrumented {
					elapsed := time.Since(chunkStart)
					if m := mc.Metrics; m != nil {
						m.Trials.Add(uint64(runs))
						m.AllHealthy.Add(probe.allHealthy)
						m.MatcherInvocations.Add(probe.matcher)
						m.MemoHits.Add(probe.memoHits)
						m.MemoMisses.Add(probe.memoMisses)
						m.ChunkSeconds.Observe(elapsed.Seconds())
					}
					if spanLog {
						mc.Logger.LogAttrs(runCtx, slog.LevelDebug, "kernel_chunk",
							slog.String("trace_id", traceID),
							slog.Int("chunk", c),
							slog.Int("trials", runs),
							slog.Int("successes", chunkSuccesses),
							slog.Uint64("all_healthy", probe.allHealthy),
							slog.Uint64("matcher", probe.matcher),
							slog.Uint64("memo_hits", probe.memoHits),
							slog.Uint64("memo_misses", probe.memoMisses),
							slog.Float64("duration_ms", float64(elapsed.Microseconds())/1000),
						)
					}
					probe.allHealthy, probe.matcher = 0, 0
					probe.memoHits, probe.memoMisses = 0, 0
				}
				if st.record(c, chunkSuccesses, rule, chunkRuns, cancel) {
					break
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	// A trial error takes precedence: it is what cancelled runCtx.
	if err := <-errCh; err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	st.mu.Lock()
	successes, realized, stopped := st.cumS, st.cumT, st.stopped
	if stopped {
		successes, realized = st.finalS, st.finalT
	}
	st.mu.Unlock()
	if m := mc.Metrics; m != nil {
		m.RealizedRuns.Observe(float64(realized))
		if stopped {
			m.EarlyStops.Add(1)
		}
	}
	return newResult(successes, realized), nil
}
