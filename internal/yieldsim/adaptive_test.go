package yieldsim

// Differential and acceptance tests for precision-targeted adaptive
// sampling. The adaptive path's contract has two halves: with the rule
// disabled (or never firing) it is bit-identical to the fixed-run kernel,
// and with the rule firing the realized count and estimate depend only on
// (Seed, Epsilon, MaxRuns, ChunkSize) — never on Workers or GOMAXPROCS.

import (
	"context"
	"math"
	"runtime"
	"testing"

	"dmfb/internal/layout"
	"dmfb/internal/stats"
	"dmfb/internal/telemetry"
)

// TestDifferentialAdaptiveEpsilonZero pins that Epsilon == 0 reproduces the
// fixed-run estimates bit-for-bit across every (strategy, defect model,
// seed, workers) cell of the differential matrix.
func TestDifferentialAdaptiveEpsilonZero(t *testing.T) {
	cases := differentialCases(t)
	for _, seed := range differentialSeeds(t) {
		for i, tc := range cases {
			fixed := configureDifferential(seed, i)
			want, err := tc.eval(fixed)
			if err != nil {
				t.Fatalf("%s seed=%d fixed: %v", tc.name, seed, err)
			}
			adaptive := configureDifferential(seed, i)
			adaptive.Epsilon = 0
			got, err := tc.eval(adaptive)
			if err != nil {
				t.Fatalf("%s seed=%d epsilon=0: %v", tc.name, seed, err)
			}
			if got != want {
				t.Errorf("%s seed=%d: epsilon=0 %+v != fixed %+v", tc.name, seed, got, want)
			}
		}
	}
}

// TestDifferentialAdaptiveBudgetExhaustion pins the harder half of the
// equivalence: an epsilon so small the rule can never fire makes the
// adaptive scheduler run to budget exhaustion through its own bookkeeping —
// commit ledger, prefix folding, discard logic — and the result must still
// be bit-identical to the fixed-run kernel.
func TestDifferentialAdaptiveBudgetExhaustion(t *testing.T) {
	cases := differentialCases(t)
	for _, seed := range differentialSeeds(t) {
		for i, tc := range cases {
			fixed := configureDifferential(seed, i)
			want, err := tc.eval(fixed)
			if err != nil {
				t.Fatalf("%s seed=%d fixed: %v", tc.name, seed, err)
			}
			adaptive := configureDifferential(seed, i)
			adaptive.Epsilon = 1e-9 // unreachable within any finite budget here
			got, err := tc.eval(adaptive)
			if err != nil {
				t.Fatalf("%s seed=%d adaptive: %v", tc.name, seed, err)
			}
			if got != want {
				t.Errorf("%s seed=%d: budget-exhausted adaptive %+v != fixed %+v", tc.name, seed, got, want)
			}
		}
	}
}

// TestDifferentialAdaptiveWorkerInvariance is the acceptance pin: a
// precision-targeted estimate (ε = 0.001, p = 0.999, n ≈ 1000, local
// strategy) meets its target, realizes at least 5× fewer trials than the
// a-priori fixed-run count that guarantees the same width, and is
// bit-identical across Workers ∈ {1,4} × GOMAXPROCS ∈ {1,8}.
func TestDifferentialAdaptiveWorkerInvariance(t *testing.T) {
	arr, err := layout.BuildWithPrimaryTarget(layout.DTMB26(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	const (
		epsilon = 0.001
		p       = 0.999
		budget  = 200000
	)
	run := func(workers int) Result {
		t.Helper()
		mc := NewMonteCarlo(20050307)
		mc.Runs = budget
		mc.Epsilon = epsilon
		mc.Workers = workers
		res, err := mc.YieldContext(context.Background(), arr, p)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	var want Result
	first := true
	for _, procs := range []int{1, 8} {
		runtime.GOMAXPROCS(procs)
		for _, workers := range []int{1, 4} {
			got := run(workers)
			if first {
				want, first = got, false
				continue
			}
			if got != want {
				t.Fatalf("GOMAXPROCS=%d workers=%d: %+v != %+v", procs, workers, got, want)
			}
		}
	}
	runtime.GOMAXPROCS(prev)

	if want.Runs >= budget {
		t.Fatalf("realized %d trials, never stopped early within budget %d", want.Runs, budget)
	}
	half := stats.Proportion{Successes: want.Successes, Trials: want.Runs}.Wilson95Half()
	if half > epsilon {
		t.Errorf("realized half-width %v exceeds target %v", half, epsilon)
	}
	// The fixed-run count that guarantees half-width ≤ ε without knowing the
	// proportion in advance is the worst case at phat = 0.5.
	worstCaseFixed := 1.959963984540054 * 1.959963984540054 * 0.25 / (epsilon * epsilon)
	if float64(want.Runs)*5 > worstCaseFixed {
		t.Errorf("realized %d trials, want ≥5× fewer than the %d-trial fixed-run worst case",
			want.Runs, int(worstCaseFixed))
	}
}

// TestAdaptiveRealizedCountIsChunkAligned checks the stopping boundary lands
// on a chunk multiple — the rule is evaluated only at committed chunk
// boundaries, never mid-chunk.
func TestAdaptiveRealizedCountIsChunkAligned(t *testing.T) {
	arr, err := layout.BuildWithPrimaryTarget(layout.DTMB26(), 200)
	if err != nil {
		t.Fatal(err)
	}
	mc := NewMonteCarlo(7)
	mc.Runs = 100000
	mc.ChunkSize = 300
	mc.Epsilon = 0.01
	res, err := mc.Yield(arr, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs >= mc.Runs {
		t.Fatalf("never stopped early (%d trials)", res.Runs)
	}
	if res.Runs%300 != 0 {
		t.Errorf("realized count %d is not a multiple of the 300-trial chunk", res.Runs)
	}
}

// TestAdaptiveMaxRunsBounds checks MaxRuns overrides Runs as the budget and
// a non-positive budget is rejected.
func TestAdaptiveMaxRunsBounds(t *testing.T) {
	arr, err := layout.BuildWithPrimaryTarget(layout.DTMB26(), 100)
	if err != nil {
		t.Fatal(err)
	}
	mc := NewMonteCarlo(1)
	mc.Runs = 10000
	mc.MaxRuns = 512
	mc.Epsilon = 1e-9 // never fires: must exhaust exactly the MaxRuns budget
	res, err := mc.Yield(arr, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 512 {
		t.Errorf("realized %d trials, want the 512-trial MaxRuns budget", res.Runs)
	}

	bad := NewMonteCarlo(1)
	bad.Runs = 0
	bad.Epsilon = 0.01
	if _, err := bad.Yield(arr, 0.95); err == nil {
		t.Error("non-positive adaptive budget accepted")
	}
}

// TestAdaptiveTelemetry checks the adaptive kernel feeds the early-stop
// counter and realized-runs histogram: one early stop observes both, a
// budget exhaustion observes only the histogram.
func TestAdaptiveTelemetry(t *testing.T) {
	arr, err := layout.BuildWithPrimaryTarget(layout.DTMB26(), 100)
	if err != nil {
		t.Fatal(err)
	}
	m := telemetry.NewKernelMetrics(nil)
	mc := NewMonteCarlo(3)
	mc.Runs = 50000
	mc.Epsilon = 0.01
	mc.Metrics = m
	res, err := mc.Yield(arr, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs >= mc.Runs {
		t.Fatalf("expected an early stop, realized %d/%d", res.Runs, mc.Runs)
	}
	if got := m.EarlyStops.Value(); got != 1 {
		t.Errorf("early stops %d, want 1", got)
	}
	if got := m.RealizedRuns.Count(); got != 1 {
		t.Errorf("realized-runs observations %d, want 1", got)
	}

	mc2 := NewMonteCarlo(3)
	mc2.Runs = 512
	mc2.Epsilon = 1e-9
	mc2.Metrics = m
	if _, err := mc2.Yield(arr, 0.9); err != nil {
		t.Fatal(err)
	}
	if got := m.EarlyStops.Value(); got != 1 {
		t.Errorf("budget exhaustion counted as early stop (%d)", got)
	}
	if got := m.RealizedRuns.Count(); got != 2 {
		t.Errorf("realized-runs observations %d, want 2", got)
	}
}

// TestAdaptiveTrialsMetricCountsExecutedTrials checks the per-chunk trials
// counter keeps counting executed work — including chunks computed past the
// stopping boundary and discarded from the estimate — so telemetry reports
// cost, not just the committed prefix.
func TestAdaptiveTrialsMetricCountsExecutedTrials(t *testing.T) {
	arr, err := layout.BuildWithPrimaryTarget(layout.DTMB26(), 100)
	if err != nil {
		t.Fatal(err)
	}
	m := telemetry.NewKernelMetrics(nil)
	mc := NewMonteCarlo(5)
	mc.Runs = 50000
	mc.Epsilon = 0.01
	mc.Workers = 4
	mc.Metrics = m
	res, err := mc.Yield(arr, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	if executed := m.Trials.Value(); executed < uint64(res.Runs) {
		t.Errorf("trials counter %d below committed count %d", executed, res.Runs)
	}
}

// TestAdaptiveStratifiedComposition checks a precision-targeted MonteCarlo
// stratifies cleanly: every simulated stratum inherits the epsilon and the
// combined estimate still matches the closed form.
func TestAdaptiveStratifiedComposition(t *testing.T) {
	arr, err := layout.BuildWithPrimaryTarget(layout.DTMB16(), 60)
	if err != nil {
		t.Fatal(err)
	}
	const p = 0.99
	mc := NewMonteCarlo(11)
	mc.Runs = 100000
	mc.Epsilon = 0.005
	sr, err := mc.StratifiedNoRedundancyMC(arr, p)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(p, float64(arr.NumPrimary()))
	if want < sr.CILo-1e-9 || want > sr.CIHi+1e-9 {
		t.Errorf("closed form %v outside stratified CI [%v, %v]", want, sr.CILo, sr.CIHi)
	}
	if sr.Runs >= mc.Runs {
		t.Errorf("adaptive strata realized %d total trials with a %d budget each — no early stopping", sr.Runs, mc.Runs)
	}
}
