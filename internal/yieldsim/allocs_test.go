package yieldsim

// Allocation-budget regression tests for the Monte-Carlo trial path. The
// kernel's throughput contract (DESIGN.md "kernel performance") is that a
// steady-state trial — inject faults, decide reconfiguration feasibility —
// performs zero heap allocations for every strategy. These tests pin that
// with testing.AllocsPerRun directly on the per-worker trial closures, so a
// future change that sneaks a map, slice growth, or closure allocation back
// into the hot loop fails loudly here rather than silently costing 25,000
// allocs per kernel op again.

import (
	"context"
	"math"
	"testing"

	"dmfb/internal/defects"
	"dmfb/internal/layout"
	"dmfb/internal/sqgrid"
)

// programForTest builds one worker's trial program from a factory and warms
// its scratch (fault set or trial batch, session, memo, injector pool) with
// a few iterations of whichever form the program takes.
func programForTest(t *testing.T, factory trialFactory, in *defects.Injector) trialProgram {
	t.Helper()
	var probe kernelProbe
	program, err := factory(&probe)
	if err != nil {
		t.Fatal(err)
	}
	if program.batch != nil {
		if _, err := program.batch(in, 2*defects.WordTrials); err != nil {
			t.Fatal(err)
		}
		return program
	}
	for i := 0; i < 64; i++ {
		if _, err := program.trial(in); err != nil {
			t.Fatal(err)
		}
	}
	return program
}

// assertZeroAllocTrials pins a factory's steady state to zero heap
// allocations: per trial for scalar programs, per 64-trial word batch for
// batch programs (so one measured run covers injection, the all-healthy
// screen, the transpose, and every feasibility verdict in the word).
func assertZeroAllocTrials(t *testing.T, name string, factory trialFactory) {
	t.Helper()
	in := defects.NewInjector(1)
	program := programForTest(t, factory, in)
	step := func() {
		if _, err := program.trial(in); err != nil {
			t.Fatal(err)
		}
	}
	if program.batch != nil {
		step = func() {
			if _, err := program.batch(in, defects.WordTrials); err != nil {
				t.Fatal(err)
			}
		}
	}
	allocs := testing.AllocsPerRun(300, step)
	if allocs != 0 {
		t.Errorf("%s: steady-state trial allocates %.1f times per run, want 0", name, allocs)
	}
}

// TestSteadyStateTrialsZeroAllocs pins the local (parallelogram), hex, and
// shifted strategies — plus the fixed-count, clustered, and no-redundancy
// trial paths — to zero allocations per steady-state trial, in both the
// default word-packed batch form and the scalar reference form.
func TestSteadyStateTrialsZeroAllocs(t *testing.T) {
	local, err := layout.BuildWithPrimaryTarget(layout.DTMB26(), 100)
	if err != nil {
		t.Fatal(err)
	}
	hex, err := layout.BuildHexagonWithPrimaryTarget(layout.DTMB26(), 100)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := sqgrid.PlacementWithPrimaryTarget(100, 2)
	if err != nil {
		t.Fatal(err)
	}
	mc := NewMonteCarlo(1)
	scalar := NewMonteCarlo(1)
	scalar.forceScalar = true
	shifted, err := mc.shiftedTrials(pl, 0.95, defects.Model{})
	if err != nil {
		t.Fatal(err)
	}
	shiftedClustered, err := mc.shiftedTrials(pl, 0.95, defects.Model{Clustered: true, ClusterSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	fast := NewMonteCarlo(1)
	fast.FastSampling = true
	clusterParams := defects.ClusterParams{MeanDefects: 7, ClusterSize: 4}
	cases := []struct {
		name    string
		factory trialFactory
	}{
		{"local/bernoulli", mc.yieldTrials(local, 0.95)},
		{"local/bernoulli-scalar", scalar.yieldTrials(local, 0.95)},
		{"local/fast-sampling", fast.yieldTrials(local, 0.95)},
		{"hex/bernoulli", mc.yieldTrials(hex, 0.95)},
		{"hex/clustered", mc.clusteredTrials(hex, clusterParams)},
		{"hex/clustered-scalar", scalar.clusteredTrials(hex, clusterParams)},
		{"local/fixed-count", mc.fixedFaultsTrials(local, 12, defects.AllCells)},
		{"local/no-redundancy", mc.noRedundancyTrials(local, 0.95)},
		{"local/no-redundancy-scalar", scalar.noRedundancyTrials(local, 0.95)},
		{"shifted/bernoulli", shifted},
		{"shifted/clustered", shiftedClustered},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { assertZeroAllocTrials(t, tc.name, tc.factory) })
	}
}

// TestYieldWorkersShareNothingButArray runs the session-per-worker kernel
// with several workers over one shared array and asserts the estimate is
// bit-identical to the single-worker run. Under `go test -race` (the CI
// default) this also proves the workers' sessions, fault sets, and
// injectors are truly unshared.
func TestYieldWorkersShareNothingButArray(t *testing.T) {
	arr, err := layout.BuildHexagonWithPrimaryTarget(layout.DTMB26(), 100)
	if err != nil {
		t.Fatal(err)
	}
	base := NewMonteCarlo(42)
	base.Runs = 2000
	base.Workers = 1
	want, err := base.YieldContext(context.Background(), arr, 0.93)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		mc := NewMonteCarlo(42)
		mc.Runs = 2000
		mc.Workers = workers
		got, err := mc.YieldContext(context.Background(), arr, 0.93)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("workers=%d: %+v != single-worker %+v", workers, got, want)
		}
	}
}

// TestFastSamplingStatisticallyConsistent checks the skip-sampling knob:
// deterministic per seed, and estimating the same yield as the default
// per-cell scan to within Monte-Carlo noise.
func TestFastSamplingStatisticallyConsistent(t *testing.T) {
	arr, err := layout.BuildWithPrimaryTarget(layout.DTMB26(), 80)
	if err != nil {
		t.Fatal(err)
	}
	const p = 0.95
	slow := NewMonteCarlo(7)
	slow.Runs = 6000
	ref, err := slow.Yield(arr, p)
	if err != nil {
		t.Fatal(err)
	}
	fast := NewMonteCarlo(7)
	fast.Runs = 6000
	fast.FastSampling = true
	got, err := fast.Yield(arr, p)
	if err != nil {
		t.Fatal(err)
	}
	again, err := fast.Yield(arr, p)
	if err != nil {
		t.Fatal(err)
	}
	if got != again {
		t.Fatalf("fast-sampling estimate not deterministic: %+v then %+v", got, again)
	}
	// Two independent 6000-run estimates of the same yield: their difference
	// has sd ≈ sqrt(2·y(1−y)/runs) ≈ 0.008 at y≈0.8; allow 5 sigma.
	if diff := math.Abs(got.Yield - ref.Yield); diff > 0.05 {
		t.Fatalf("fast-sampling yield %.4f vs default %.4f differ by %.4f", got.Yield, ref.Yield, diff)
	}
	// The knob must also hold for the no-redundancy estimator, which shares
	// the sampler selection.
	refNR, err := slow.NoRedundancyMC(arr, p)
	if err != nil {
		t.Fatal(err)
	}
	fastNR, err := fast.NoRedundancyMC(arr, p)
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(refNR.Yield - fastNR.Yield); diff > 0.05 {
		t.Fatalf("no-redundancy fast-sampling yield %.4f vs default %.4f differ by %.4f", fastNR.Yield, refNR.Yield, diff)
	}
}

// TestFixedFaultsSessionMatchesReference pins the session-driven fixed-count
// estimator to the pre-session numbers: the trial sequence (injector draws)
// is unchanged, so a fixed seed must reproduce the exact Result the
// plan-materializing path produced.
func TestFixedFaultsSessionMatchesReference(t *testing.T) {
	arr, err := layout.BuildWithPrimaryTarget(layout.DTMB26(), 60)
	if err != nil {
		t.Fatal(err)
	}
	mc := NewMonteCarlo(11)
	mc.Runs = 1500
	res, err := mc.YieldFixedFaults(arr, 9, defects.AllCells)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 1500 || res.Successes == 0 || res.Successes == res.Runs {
		t.Fatalf("degenerate fixed-faults result %+v", res)
	}
	// Cross-check the verdicts trial-by-trial against LocalReconfigure on a
	// fresh injector replaying the same chunk seeds.
	again, err := mc.YieldFixedFaults(arr, 9, defects.AllCells)
	if err != nil {
		t.Fatal(err)
	}
	if res != again {
		t.Fatalf("fixed-faults estimate not deterministic: %+v then %+v", res, again)
	}
}
