package yieldsim

// Differential harness for the bit-parallel trial path and the feasibility
// memo. The kernel's contract is that neither optimization is observable in
// any estimate: a word-packed batch consumes the injector's PRNG stream in
// exactly the order 64 successive scalar trials would (trial-major,
// cell-minor), and the memo caches verdicts of a pure function. These tests
// pin both equivalences as bit-identical Results across every estimator
// strategy, defect model, and a spread of seeds — so a future batching or
// caching change that shifts a single draw or verdict fails here, not in a
// statistical tolerance band.

import (
	"context"
	"testing"

	"dmfb/internal/defects"
	"dmfb/internal/layout"
	"dmfb/internal/sqgrid"
	"dmfb/internal/telemetry"
)

// differentialSeeds returns the seed spread: 5 seeds normally, 2 under
// -short (CI runs the full suite via `go test -run Differential -count=3`).
func differentialSeeds(t *testing.T) []int64 {
	t.Helper()
	if testing.Short() {
		return []int64{1, 42}
	}
	return []int64{1, 7, 42, 1234, 987654321}
}

// estimatorCase is one (strategy, defect model) cell of the differential
// matrix, evaluated under a configured MonteCarlo.
type estimatorCase struct {
	name string
	eval func(mc *MonteCarlo) (Result, error)
}

// differentialCases builds the estimator matrix over the shared arrays. The
// run counts are deliberately non-multiples of 64 so the final partial word
// of every chunk is exercised.
func differentialCases(t *testing.T) []estimatorCase {
	t.Helper()
	local, err := layout.BuildWithPrimaryTarget(layout.DTMB26(), 80)
	if err != nil {
		t.Fatal(err)
	}
	hex, err := layout.BuildHexagonWithPrimaryTarget(layout.DTMB26(), 100)
	if err != nil {
		t.Fatal(err)
	}
	big, err := layout.BuildWithPrimaryTarget(layout.DTMB26(), 400)
	if err != nil {
		t.Fatal(err)
	}
	if big.NumCells() <= 256 {
		t.Fatalf("big array has %d cells, want > 256 to cover the memo-refused path", big.NumCells())
	}
	pl, err := sqgrid.PlacementWithPrimaryTarget(90, 2)
	if err != nil {
		t.Fatal(err)
	}
	clustered := defects.Model{Clustered: true, ClusterSize: 4}
	ctx := context.Background()
	return []estimatorCase{
		{"local/bernoulli", func(mc *MonteCarlo) (Result, error) {
			return mc.YieldContext(ctx, local, 0.94)
		}},
		{"local/bernoulli-high-p", func(mc *MonteCarlo) (Result, error) {
			return mc.YieldContext(ctx, local, 0.999)
		}},
		{"hex/bernoulli", func(mc *MonteCarlo) (Result, error) {
			return mc.YieldContext(ctx, hex, 0.93)
		}},
		{"hex/clustered", func(mc *MonteCarlo) (Result, error) {
			return mc.YieldModelContext(ctx, hex, 0.95, clustered)
		}},
		{"big/bernoulli-memo-refused", func(mc *MonteCarlo) (Result, error) {
			return mc.YieldContext(ctx, big, 0.97)
		}},
		{"local/no-redundancy", func(mc *MonteCarlo) (Result, error) {
			return mc.NoRedundancyMC(local, 0.94)
		}},
		{"local/fixed-count", func(mc *MonteCarlo) (Result, error) {
			return mc.YieldFixedFaults(local, 9, defects.AllCells)
		}},
		{"shifted/bernoulli", func(mc *MonteCarlo) (Result, error) {
			return mc.ShiftedYield(pl, 0.94)
		}},
		{"shifted/clustered", func(mc *MonteCarlo) (Result, error) {
			return mc.ShiftedYieldModelContext(ctx, pl, 0.95, clustered)
		}},
	}
}

// configure builds a MonteCarlo for one differential run. FastSampling and
// a worker count > 1 ride along on alternating seeds so both samplers and
// the chunk-parallel scheduler sit under the equivalence.
func configureDifferential(seed int64, i int) *MonteCarlo {
	mc := NewMonteCarlo(seed)
	mc.Runs = 900 // 3 chunks of 256 + a 132-trial tail
	mc.ChunkSize = 256
	if i%2 == 1 {
		mc.Workers = 4
		mc.FastSampling = true
	}
	return mc
}

// TestDifferentialBatchMatchesScalar pins the tentpole equivalence: the
// word-packed batch path and the scalar reference path produce bit-identical
// Results for every (strategy, defect model, seed, sampler, workers) cell.
func TestDifferentialBatchMatchesScalar(t *testing.T) {
	cases := differentialCases(t)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for i, seed := range differentialSeeds(t) {
				batch := configureDifferential(seed, i)
				got, err := tc.eval(batch)
				if err != nil {
					t.Fatal(err)
				}
				ref := configureDifferential(seed, i)
				ref.forceScalar = true
				want, err := tc.eval(ref)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("seed %d: batch %+v != scalar %+v", seed, got, want)
				}
			}
		})
	}
}

// TestDifferentialMemoDoesNotChangeEstimates pins the memo's transparency:
// disabling feasibility memoization changes no Result bit on either the
// batch or the scalar path.
func TestDifferentialMemoDoesNotChangeEstimates(t *testing.T) {
	cases := differentialCases(t)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for i, seed := range differentialSeeds(t) {
				for _, scalar := range []bool{false, true} {
					memo := configureDifferential(seed, i)
					memo.forceScalar = scalar
					got, err := tc.eval(memo)
					if err != nil {
						t.Fatal(err)
					}
					bare := configureDifferential(seed, i)
					bare.forceScalar = scalar
					bare.noMemo = true
					want, err := tc.eval(bare)
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Fatalf("seed %d scalar=%v: memoized %+v != unmemoized %+v",
							seed, scalar, got, want)
					}
				}
			}
		})
	}
}

// TestDifferentialWorkerByteIdentity extends the share-nothing pin to the
// batch+memo kernel under the clustered model: the estimate is a function of
// (Seed, Runs, ChunkSize) only, never of Workers, even though each worker
// owns a private memo whose hit pattern depends on its chunk assignment.
func TestDifferentialWorkerByteIdentity(t *testing.T) {
	hex, err := layout.BuildHexagonWithPrimaryTarget(layout.DTMB26(), 100)
	if err != nil {
		t.Fatal(err)
	}
	model := defects.Model{Clustered: true, ClusterSize: 4}
	base := NewMonteCarlo(42)
	base.Runs = 2000
	base.Workers = 1
	want, err := base.YieldModelContext(context.Background(), hex, 0.95, model)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		mc := NewMonteCarlo(42)
		mc.Runs = 2000
		mc.Workers = workers
		got, err := mc.YieldModelContext(context.Background(), hex, 0.95, model)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("workers=%d: %+v != single-worker %+v", workers, got, want)
		}
	}
}

// TestMemoCountersAccounting checks the memo telemetry identities on a
// memoizable array: every matcher-path decision is either a hit or a miss
// (hits + misses == matcher invocations), and at high survival probability
// the hit rate dominates — the regime the memo exists for.
func TestMemoCountersAccounting(t *testing.T) {
	arr, err := layout.BuildWithPrimaryTarget(layout.DTMB26(), 80)
	if err != nil {
		t.Fatal(err)
	}
	r := telemetry.NewRegistry()
	mc := NewMonteCarlo(5)
	mc.Runs = 4000
	mc.Metrics = telemetry.NewKernelMetrics(r)
	if _, err := mc.Yield(arr, 0.998); err != nil {
		t.Fatal(err)
	}
	m := mc.Metrics
	hits, misses := m.MemoHits.Value(), m.MemoMisses.Value()
	matcher := m.MatcherInvocations.Value()
	if hits+misses != matcher {
		t.Errorf("memo hits %d + misses %d != matcher invocations %d", hits, misses, matcher)
	}
	if matcher == 0 {
		t.Fatal("no faulty trials at p=0.998 with 4000 runs; raise Runs")
	}
	if hits <= misses {
		t.Errorf("memo hits %d <= misses %d at p=0.998; expected hit-dominated", hits, misses)
	}

	// A >MemoMaxCells array refuses the memo: counters stay zero while the
	// matcher still runs.
	big, err := layout.BuildWithPrimaryTarget(layout.DTMB26(), 400)
	if err != nil {
		t.Fatal(err)
	}
	r2 := telemetry.NewRegistry()
	mc2 := NewMonteCarlo(5)
	mc2.Runs = 1000
	mc2.Metrics = telemetry.NewKernelMetrics(r2)
	if _, err := mc2.Yield(big, 0.95); err != nil {
		t.Fatal(err)
	}
	if h, ms := mc2.Metrics.MemoHits.Value(), mc2.Metrics.MemoMisses.Value(); h != 0 || ms != 0 {
		t.Errorf("memo counters %d/%d on a %d-cell array, want 0/0 (memo refused)",
			h, ms, big.NumCells())
	}
	if mc2.Metrics.MatcherInvocations.Value() == 0 {
		t.Error("matcher invocations = 0 on the big array")
	}
}
