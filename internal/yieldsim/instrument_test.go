package yieldsim

// Kernel instrumentation tests: attaching a telemetry bundle and a debug
// logger must not change a single estimate bit (the chunk-seeded determinism
// contract), must account for every trial exactly once, and must emit chunk
// spans carrying the caller's trace ID.

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"testing"

	"dmfb/internal/layout"
	"dmfb/internal/telemetry"
)

// TestInstrumentationDoesNotPerturbEstimate pins that wiring Metrics and a
// debug Logger into the kernel leaves the estimate bit-identical: the
// instrumentation observes the trial stream, it never participates in it.
func TestInstrumentationDoesNotPerturbEstimate(t *testing.T) {
	arr, err := layout.BuildWithPrimaryTarget(layout.DTMB26(), 80)
	if err != nil {
		t.Fatal(err)
	}
	plain := NewMonteCarlo(21)
	plain.Runs = 3000
	plain.Workers = 4
	want, err := plain.Yield(arr, 0.94)
	if err != nil {
		t.Fatal(err)
	}

	r := telemetry.NewRegistry()
	inst := NewMonteCarlo(21)
	inst.Runs = 3000
	inst.Workers = 4
	inst.Metrics = telemetry.NewKernelMetrics(r)
	inst.Logger = slog.New(slog.NewJSONHandler(&bytes.Buffer{}, &slog.HandlerOptions{Level: slog.LevelDebug}))
	got, err := inst.Yield(arr, 0.94)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("instrumented estimate %+v != plain %+v", got, want)
	}
}

// TestKernelMetricsAccounting checks the bookkeeping identities: every trial
// is counted once, and the all-healthy/matcher split partitions the trials
// for the Bernoulli path.
func TestKernelMetricsAccounting(t *testing.T) {
	arr, err := layout.BuildWithPrimaryTarget(layout.DTMB26(), 60)
	if err != nil {
		t.Fatal(err)
	}
	r := telemetry.NewRegistry()
	mc := NewMonteCarlo(5)
	mc.Runs = 2500
	mc.ChunkSize = 300
	mc.Metrics = telemetry.NewKernelMetrics(r)
	if _, err := mc.Yield(arr, 0.9); err != nil {
		t.Fatal(err)
	}
	m := mc.Metrics
	if got := m.Trials.Value(); got != 2500 {
		t.Errorf("trials counter = %d, want 2500", got)
	}
	if sum := m.AllHealthy.Value() + m.MatcherInvocations.Value(); sum != 2500 {
		t.Errorf("all_healthy %d + matcher %d != 2500 trials",
			m.AllHealthy.Value(), m.MatcherInvocations.Value())
	}
	wantChunks := uint64((2500 + 299) / 300)
	if got := m.ChunkSeconds.Count(); got != wantChunks {
		t.Errorf("chunk histogram count = %d, want %d", got, wantChunks)
	}
}

// TestKernelChunkSpansCarryTraceID runs an estimate with a debug logger and
// a trace ID in the context, then checks every kernel_chunk span names that
// trace ID — the property the service relies on to tie a slow request to
// its kernel work.
func TestKernelChunkSpansCarryTraceID(t *testing.T) {
	arr, err := layout.BuildWithPrimaryTarget(layout.DTMB26(), 40)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	mc := NewMonteCarlo(3)
	mc.Runs = 600
	mc.ChunkSize = 200
	mc.Workers = 1
	mc.Logger = slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	ctx := telemetry.WithTraceID(context.Background(), "trace-xyz")
	if _, err := mc.YieldContext(ctx, arr, 0.95); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(&buf)
	spans := 0
	for dec.More() {
		var ev struct {
			Msg     string `json:"msg"`
			TraceID string `json:"trace_id"`
			Trials  int    `json:"trials"`
		}
		if err := dec.Decode(&ev); err != nil {
			t.Fatal(err)
		}
		if ev.Msg != "kernel_chunk" {
			continue
		}
		spans++
		if ev.TraceID != "trace-xyz" {
			t.Errorf("span trace_id = %q, want trace-xyz", ev.TraceID)
		}
		if ev.Trials <= 0 {
			t.Errorf("span trials = %d, want > 0", ev.Trials)
		}
	}
	if spans != 3 {
		t.Errorf("kernel_chunk spans = %d, want 3 (600 runs / 200 chunk)", spans)
	}
}

// TestInfoLevelLoggerEmitsNoSpans pins the cost model: a logger at info
// level attached to the kernel produces zero output.
func TestInfoLevelLoggerEmitsNoSpans(t *testing.T) {
	arr, err := layout.BuildWithPrimaryTarget(layout.DTMB26(), 40)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	mc := NewMonteCarlo(3)
	mc.Runs = 400
	mc.Logger = slog.New(slog.NewJSONHandler(&buf, nil)) // info default
	if _, err := mc.Yield(arr, 0.95); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("info-level logger received kernel output: %q", buf.String())
	}
}
