package yieldsim

import (
	"context"
	"math"
	"testing"

	"dmfb/internal/defects"
	"dmfb/internal/layout"
	"dmfb/internal/sqgrid"
)

func clusteredModel(size float64) defects.Model {
	return defects.Model{Clustered: true, ClusterSize: size}
}

func TestYieldModelContextZeroModelMatchesYieldContext(t *testing.T) {
	arr, err := layout.BuildWithPrimaryTarget(layout.DTMB26(), 60)
	if err != nil {
		t.Fatal(err)
	}
	mc := NewMonteCarlo(9)
	mc.Runs = 600
	a, err := mc.YieldModelContext(context.Background(), arr, 0.95, defects.Model{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := mc.YieldContext(context.Background(), arr, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("zero model %+v != YieldContext %+v", a, b)
	}
}

func TestYieldModelContextClusteredDeterministicAcrossWorkers(t *testing.T) {
	arr, err := layout.BuildWithPrimaryTarget(layout.DTMB36(), 60)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) Result {
		mc := NewMonteCarlo(4)
		mc.Runs = 800
		mc.Workers = workers
		res, err := mc.YieldModelContext(context.Background(), arr, 0.94, clusteredModel(4))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := run(1), run(8); a != b {
		t.Errorf("clustered estimate differs across workers: %+v vs %+v", a, b)
	}
}

// TestClusteredYieldBelowIndependent pins the qualitative physics: at equal
// expected defect density, clusters overwhelm the local spares around their
// center, so interstitial redundancy repairs clustered faults less often
// than scattered ones.
func TestClusteredYieldBelowIndependent(t *testing.T) {
	arr, err := layout.BuildWithPrimaryTarget(layout.DTMB26(), 100)
	if err != nil {
		t.Fatal(err)
	}
	mc := NewMonteCarlo(20050307)
	mc.Runs = 3000
	ind, err := mc.YieldModelContext(context.Background(), arr, 0.95, defects.Model{})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := mc.YieldModelContext(context.Background(), arr, 0.95, clusteredModel(6))
	if err != nil {
		t.Fatal(err)
	}
	if cl.Yield >= ind.Yield {
		t.Errorf("clustered yield %.4f not below independent %.4f", cl.Yield, ind.Yield)
	}
}

func TestYieldModelContextRejectsBadInputs(t *testing.T) {
	arr, err := layout.BuildWithPrimaryTarget(layout.DTMB26(), 30)
	if err != nil {
		t.Fatal(err)
	}
	mc := NewMonteCarlo(1)
	mc.Runs = 10
	if _, err := mc.YieldModelContext(context.Background(), arr, 1.5, clusteredModel(4)); err == nil {
		t.Error("p=1.5 accepted")
	}
	if _, err := mc.YieldModelContext(context.Background(), arr, math.NaN(), clusteredModel(4)); err == nil {
		t.Error("NaN p accepted")
	}
	if _, err := mc.YieldModelContext(context.Background(), arr, 0.9, clusteredModel(0.1)); err == nil {
		t.Error("cluster size 0.1 accepted")
	}
}

func TestHexYieldContextDeterministicAndCounted(t *testing.T) {
	run := func(workers int) HexYield {
		mc := NewMonteCarlo(17)
		mc.Runs = 500
		mc.Workers = workers
		hy, err := mc.HexYieldContext(context.Background(), layout.DTMB26(), 80, 0.95, defects.Model{})
		if err != nil {
			t.Fatal(err)
		}
		return hy
	}
	a, b := run(1), run(6)
	if a != b {
		t.Errorf("hex estimate differs across workers: %+v vs %+v", a, b)
	}
	if a.NPrimary != 80 {
		t.Errorf("NPrimary %d, want 80", a.NPrimary)
	}
	if a.NTotal <= a.NPrimary {
		t.Errorf("NTotal %d not above NPrimary %d", a.NTotal, a.NPrimary)
	}
}

func TestHexYieldContextPropagatesBuildErrors(t *testing.T) {
	mc := NewMonteCarlo(1)
	if _, err := mc.HexYieldContext(context.Background(), layout.DTMB26(), 0, 0.95, defects.Model{}); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestHexYieldContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	mc := NewMonteCarlo(1)
	mc.Runs = 100000
	if _, err := mc.HexYieldContext(ctx, layout.DTMB44(), 120, 0.9, clusteredModel(4)); err == nil {
		t.Error("cancelled context did not abort the simulation")
	}
}

func TestShiftedYieldModelContextZeroModelMatches(t *testing.T) {
	pl, err := sqgrid.PlacementWithPrimaryTarget(48, 1)
	if err != nil {
		t.Fatal(err)
	}
	mc := NewMonteCarlo(3)
	mc.Runs = 600
	a, err := mc.ShiftedYieldContext(context.Background(), pl, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mc.ShiftedYieldModelContext(context.Background(), pl, 0.95, defects.Model{})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("zero model %+v != ShiftedYieldContext %+v", a, b)
	}
}

func TestShiftedYieldModelContextClusteredDeterministic(t *testing.T) {
	pl, err := sqgrid.PlacementWithPrimaryTarget(48, 1)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) Result {
		mc := NewMonteCarlo(8)
		mc.Runs = 700
		mc.Workers = workers
		res, err := mc.ShiftedYieldModelContext(context.Background(), pl, 0.93, clusteredModel(3))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := run(1), run(5); a != b {
		t.Errorf("clustered shifted estimate differs across workers: %+v vs %+v", a, b)
	}
}
