package yieldsim

// Fault-count stratification for the Bernoulli defect model. With every
// cell failing i.i.d. with probability q = 1−p, the number of faults K is
// Binomial(n, q), and conditioned on K = k the faulty cells are a uniform
// k-subset — exactly the distribution FixedCount draws. Yield therefore
// decomposes as
//
//	Y = Σ_k P(K = k) · P(feasible | K = k),
//
// with the weights P(K = k) computed analytically (stats.BinomialWeights)
// and only the conditional feasibilities estimated by simulation. The k = 0
// stratum — the overwhelming mass at production-realistic p — is free: zero
// faults are always feasible. At p = 0.999 on a 1000-cell array, direct
// Bernoulli sampling spends ~37% of its trials on all-healthy draws and
// almost never sees k ≥ 4; stratification spends its whole budget on the
// rare fault patterns that actually decide the answer.

import (
	"context"
	"fmt"
	"math"

	"dmfb/internal/defects"
	"dmfb/internal/layout"
	"dmfb/internal/stats"
)

// DefaultStratumTail is the Binomial upper-tail mass beyond which strata are
// not simulated. The truncated tail is accounted conservatively: it is added
// in full to the upper confidence bound, never to the point estimate.
const DefaultStratumTail = 1e-6

// StratumResult is one simulated stratum of a stratified estimate.
type StratumResult struct {
	// K is the conditioned fault count.
	K int
	// Weight is the analytic probability P(K = k).
	Weight float64
	// Result is the Monte-Carlo estimate of P(feasible | K = k). For the
	// k = 0 stratum it is the analytic certainty {Yield: 1, Runs: 0}.
	Result Result
}

// StratifiedResult is the analytic combination of per-stratum estimates.
type StratifiedResult struct {
	// Yield is Σ Weight·Result.Yield over the simulated strata.
	Yield float64
	// CILo and CIHi bracket Yield with the weighted sum of the per-stratum
	// Wilson half-widths — conservative, since independent stratum errors
	// partially cancel — and CIHi additionally absorbs the full truncated
	// TailWeight. Centering on Yield (not on the weighted Wilson centers,
	// which are shifted toward 1/2) keeps the interval an honest bracket of
	// the point estimate.
	CILo, CIHi float64
	// Runs is the total number of Monte-Carlo trials across all strata —
	// the realized simulation cost of the estimate.
	Runs int
	// TailWeight is the Binomial mass of the unsimulated strata.
	TailWeight float64
	// Strata holds the per-stratum breakdown, ordered by K.
	Strata []StratumResult
}

// StratifiedYield estimates reconfigurable yield under the Bernoulli model
// by fault-count stratification (see the package comment above).
func (mc *MonteCarlo) StratifiedYield(arr *layout.Array, p float64) (StratifiedResult, error) {
	return mc.StratifiedYieldContext(context.Background(), arr, p)
}

// StratifiedYieldContext is StratifiedYield with cancellation.
func (mc *MonteCarlo) StratifiedYieldContext(ctx context.Context, arr *layout.Array, p float64) (StratifiedResult, error) {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return StratifiedResult{}, fmt.Errorf("yieldsim: survival probability %v outside [0,1]", p)
	}
	return mc.stratified(ctx, arr.NumCells(), 1-p, func(k int) trialFactory {
		return mc.fixedFaultsTrials(arr, k, defects.AllCells)
	})
}

// StratifiedNoRedundancyMC estimates the no-redundancy yield by fault-count
// stratification. Its combined estimate equals NoRedundancy(p, nPrimary)
// exactly up to stratum sampling noise, which makes it the cheap
// cross-validation target for the stratification machinery itself.
func (mc *MonteCarlo) StratifiedNoRedundancyMC(arr *layout.Array, p float64) (StratifiedResult, error) {
	return mc.StratifiedNoRedundancyMCContext(context.Background(), arr, p)
}

// StratifiedNoRedundancyMCContext is StratifiedNoRedundancyMC with
// cancellation.
func (mc *MonteCarlo) StratifiedNoRedundancyMCContext(ctx context.Context, arr *layout.Array, p float64) (StratifiedResult, error) {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return StratifiedResult{}, fmt.Errorf("yieldsim: survival probability %v outside [0,1]", p)
	}
	return mc.stratified(ctx, arr.NumCells(), 1-p, func(k int) trialFactory {
		return mc.noRedundancyFixedTrials(arr, k)
	})
}

// noRedundancyFixedTrials is the fixed-fault-count form of the baseline
// trial: exactly m faults drawn uniformly over all cells, survival iff none
// of them is a primary. No session and no matcher, matching
// noRedundancyTrials.
func (mc *MonteCarlo) noRedundancyFixedTrials(arr *layout.Array, m int) trialFactory {
	return func(probe *kernelProbe) (trialProgram, error) {
		fs := defects.NewFaultSet(arr.NumCells())
		return trialProgram{trial: func(in *defects.Injector) (bool, error) {
			next, err := in.FixedCount(arr, m, defects.AllCells, fs)
			if err != nil {
				return false, err
			}
			fs = next
			if fs.Count() == 0 {
				probe.allHealthy++
			}
			return !fs.AnyFaultyPrimary(arr), nil
		}}, nil
	}
}

// stratified runs the per-stratum estimates and combines them analytically.
// Stratum k gets its own seed from the estimate's seed stream and otherwise
// inherits the full MonteCarlo configuration, so a precision-targeted mc
// (Epsilon > 0) adaptively sizes every stratum independently. Determinism
// carries over: the combined estimate is a pure function of the MonteCarlo
// parameters, never of worker scheduling.
func (mc *MonteCarlo) stratified(ctx context.Context, n int, q float64, factory func(k int) trialFactory) (StratifiedResult, error) {
	weights, tail := stats.BinomialWeights(n, q, DefaultStratumTail)
	seeds := stats.SeedStream(mc.Seed, len(weights))
	out := StratifiedResult{TailWeight: tail, Strata: make([]StratumResult, 0, len(weights))}
	half := 0.0
	for k, w := range weights {
		sr := StratumResult{K: k, Weight: w}
		if k == 0 {
			// Zero faults: feasible with certainty, no simulation needed.
			sr.Result = Result{Yield: 1, CILo: 1, CIHi: 1}
		} else {
			smc := *mc
			smc.Seed = seeds[k]
			res, err := smc.run(ctx, factory(k))
			if err != nil {
				return StratifiedResult{}, fmt.Errorf("stratum k=%d: %w", k, err)
			}
			sr.Result = res
			out.Runs += res.Runs
			half += w * stats.Proportion{Successes: res.Successes, Trials: res.Runs}.Wilson95Half()
		}
		out.Yield += w * sr.Result.Yield
		out.Strata = append(out.Strata, sr)
	}
	// Bracket the point estimate with the weighted per-stratum half-widths;
	// the truncated tail could in principle be all-feasible, so it belongs
	// in the upper bound only.
	out.CILo = out.Yield - half
	out.CIHi = out.Yield + half + tail
	if out.CILo < 0 {
		out.CILo = 0
	}
	if out.CIHi > 1 {
		out.CIHi = 1
	}
	return out, nil
}
