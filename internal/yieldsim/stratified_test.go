package yieldsim

import (
	"math"
	"reflect"
	"testing"

	"dmfb/internal/layout"
)

// TestStratifiedNoRedundancyMatchesClosedForm cross-validates the
// stratification machinery against the exact p^n closed form at several
// (n, p) points: the combined estimate's interval must cover it, and the
// point estimate must sit within Monte-Carlo noise.
func TestStratifiedNoRedundancyMatchesClosedForm(t *testing.T) {
	for _, tc := range []struct {
		nPrimary int
		p        float64
	}{
		{60, 0.999},
		{60, 0.99},
		{150, 0.995},
		{300, 0.999},
	} {
		arr, err := layout.BuildWithPrimaryTarget(layout.DTMB26(), tc.nPrimary)
		if err != nil {
			t.Fatal(err)
		}
		mc := NewMonteCarlo(1)
		mc.Runs = 20000
		sr, err := mc.StratifiedNoRedundancyMC(arr, tc.p)
		if err != nil {
			t.Fatalf("n=%d p=%v: %v", tc.nPrimary, tc.p, err)
		}
		want := NoRedundancy(tc.p, arr.NumPrimary())
		if want < sr.CILo-1e-9 || want > sr.CIHi+1e-9 {
			t.Errorf("n=%d p=%v: closed form %v outside stratified CI [%v, %v]",
				tc.nPrimary, tc.p, want, sr.CILo, sr.CIHi)
		}
		if math.Abs(sr.Yield-want) > 0.01 {
			t.Errorf("n=%d p=%v: stratified %v vs closed form %v", tc.nPrimary, tc.p, sr.Yield, want)
		}
	}
}

// TestStratifiedMatchesClusterClosedForm cross-validates the reconfigurable
// stratified estimator against the cluster-complete DTMB(1,6) closed form
// Y = (p^7 + 7p^6(1−p))^(n/6), the one geometry where the paper's analytic
// model is exact.
func TestStratifiedMatchesClusterClosedForm(t *testing.T) {
	arr, err := layout.BuildClusterCompleteDTMB16(12)
	if err != nil {
		t.Fatal(err)
	}
	n := arr.NumPrimary()
	if n != 72 {
		t.Fatalf("cluster-complete array has %d primaries, want 72", n)
	}
	for _, p := range []float64{0.999, 0.99, 0.98} {
		mc := NewMonteCarlo(42)
		mc.Runs = 20000
		sr, err := mc.StratifiedYield(arr, p)
		if err != nil {
			t.Fatalf("p=%v: %v", p, err)
		}
		want := ClusterYieldDTMB16(p, n)
		if want < sr.CILo-1e-9 || want > sr.CIHi+1e-9 {
			t.Errorf("p=%v: closed form %v outside stratified CI [%v, %v]", p, want, sr.CILo, sr.CIHi)
		}
		if math.Abs(sr.Yield-want) > 0.01 {
			t.Errorf("p=%v: stratified %v vs closed form %v", p, sr.Yield, want)
		}
	}
}

// TestStratifiedAgreesWithDirectBernoulli checks the two estimators of the
// same quantity — direct Bernoulli sampling and fault-count stratification —
// agree within their combined uncertainty on a reconfigurable array.
func TestStratifiedAgreesWithDirectBernoulli(t *testing.T) {
	arr, err := layout.BuildWithPrimaryTarget(layout.DTMB26(), 100)
	if err != nil {
		t.Fatal(err)
	}
	const p = 0.99
	mc := NewMonteCarlo(7)
	mc.Runs = 20000
	direct, err := mc.Yield(arr, p)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := mc.StratifiedYield(arr, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sr.Yield-direct.Yield) > 0.01 {
		t.Errorf("stratified %v vs direct %v", sr.Yield, direct.Yield)
	}
	if sr.CIHi < direct.CILo || direct.CIHi < sr.CILo {
		t.Errorf("disjoint intervals: stratified [%v,%v] vs direct [%v,%v]",
			sr.CILo, sr.CIHi, direct.CILo, direct.CIHi)
	}
}

// TestStratifiedK0Free pins the headline saving: the k = 0 stratum is
// analytic — no trials — and at high p it carries most of the mass.
func TestStratifiedK0Free(t *testing.T) {
	arr, err := layout.BuildWithPrimaryTarget(layout.DTMB26(), 100)
	if err != nil {
		t.Fatal(err)
	}
	mc := NewMonteCarlo(1)
	mc.Runs = 1000
	sr, err := mc.StratifiedYield(arr, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	k0 := sr.Strata[0]
	if k0.K != 0 || k0.Result.Runs != 0 || k0.Result.Yield != 1 {
		t.Errorf("k=0 stratum %+v, want analytic certainty with zero trials", k0)
	}
	// exp(-n·q) ≈ 0.87 of the mass at q = 0.001 on this ~135-cell array.
	if k0.Weight < 0.5 {
		t.Errorf("k=0 weight %v suspiciously small at p=0.999", k0.Weight)
	}
	if sr.TailWeight > DefaultStratumTail {
		t.Errorf("tail weight %v exceeds the truncation bound", sr.TailWeight)
	}
}

// TestStratifiedDeterministicAcrossWorkers checks the whole stratified
// result — estimate, per-stratum breakdown, realized counts — is invariant
// in the worker count.
func TestStratifiedDeterministicAcrossWorkers(t *testing.T) {
	arr, err := layout.BuildWithPrimaryTarget(layout.DTMB26(), 80)
	if err != nil {
		t.Fatal(err)
	}
	base := NewMonteCarlo(99)
	base.Runs = 3000
	base.Workers = 1
	want, err := base.StratifiedYield(arr, 0.98)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		mc := NewMonteCarlo(99)
		mc.Runs = 3000
		mc.Workers = workers
		got, err := mc.StratifiedYield(arr, 0.98)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: %+v != single-worker %+v", workers, got, want)
		}
	}
}

// TestStratifiedRejectsBadP mirrors the direct estimators' validation.
func TestStratifiedRejectsBadP(t *testing.T) {
	arr, err := layout.BuildWithPrimaryTarget(layout.DTMB26(), 20)
	if err != nil {
		t.Fatal(err)
	}
	mc := NewMonteCarlo(1)
	for _, p := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := mc.StratifiedYield(arr, p); err == nil {
			t.Errorf("p=%v accepted by StratifiedYield", p)
		}
		if _, err := mc.StratifiedNoRedundancyMC(arr, p); err == nil {
			t.Errorf("p=%v accepted by StratifiedNoRedundancyMC", p)
		}
	}
}
