// Package yieldsim estimates the manufacturing yield of defect-tolerant
// microfluidic arrays, reproducing the analysis of paper §6.
//
// Two estimators are provided. For DTMB(1,6), whose spare assignment is
// unique, the closed-form cluster model applies: the array decomposes into
// clusters of one spare plus its six primaries, a cluster survives iff at
// most one of its seven cells fails, and clusters fail independently.
// For the higher-redundancy designs the spare assignment is a matching
// problem, so yield comes from Monte-Carlo simulation: in each run every
// cell fails i.i.d. with probability q = 1−p, and the run succeeds iff local
// reconfiguration (maximum bipartite matching) repairs every faulty primary.
// A third estimator, ShiftedYield, applies the same trial structure to the
// boundary-spare-row arrays of the shifted-replacement baseline the paper
// argues against (Fig. 2), so the two redundancy schemes can be compared on
// equal footing in parameter sweeps. HexYieldContext runs the kernel over
// DTMB arrays instantiated on a regular hexagonal chip footprint, and the
// *ModelContext variants evaluate any of these under an explicit spatial
// defect model (independent Bernoulli or clustered, defects.Model).
//
// The effective yield EY = Y·n/N = Y/(1+RR) weighs yield against the area
// overhead of redundancy (paper Fig. 10).
package yieldsim

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"math/bits"
	"runtime"
	"sync"
	"time"

	"dmfb/internal/defects"
	"dmfb/internal/layout"
	"dmfb/internal/reconfig"
	"dmfb/internal/sqgrid"
	"dmfb/internal/stats"
	"dmfb/internal/telemetry"
)

// NoRedundancy returns the yield p^n of an array whose n working cells have
// no spares: a single fault discards the chip.
func NoRedundancy(p float64, n int) float64 {
	if n < 0 {
		return 0
	}
	return math.Pow(p, float64(n))
}

// ClusterYieldDTMB16 returns the closed-form yield of a DTMB(1,6) array with
// n primary cells (paper §6): Yc = p^7 + 7·p^6·(1−p), Y = Yc^(n/6).
func ClusterYieldDTMB16(p float64, n int) float64 {
	if n < 0 {
		return 0
	}
	yc := math.Pow(p, 7) + 7*math.Pow(p, 6)*(1-p)
	return math.Pow(yc, float64(n)/6.0)
}

// EffectiveYield returns EY = Y/(1+RR), the paper's yield-per-area metric.
func EffectiveYield(y, rr float64) float64 { return y / (1 + rr) }

// EffectiveYieldCells returns EY = Y·n/N given explicit cell counts.
func EffectiveYieldCells(y float64, nPrimary, nTotal int) float64 {
	if nTotal == 0 {
		return 0
	}
	return y * float64(nPrimary) / float64(nTotal)
}

// Result is a Monte-Carlo yield estimate.
type Result struct {
	// Yield is the estimated success proportion.
	Yield float64
	// Runs and Successes give the raw counts.
	Runs, Successes int
	// CILo and CIHi bound the Wilson 95% confidence interval.
	CILo, CIHi float64
}

func newResult(successes, runs int) Result {
	prop := stats.Proportion{Successes: successes, Trials: runs}
	lo, hi := prop.Wilson95()
	return Result{Yield: prop.Value(), Runs: runs, Successes: successes, CILo: lo, CIHi: hi}
}

// String formats the estimate with its confidence interval.
func (r Result) String() string {
	return fmt.Sprintf("%.4f (95%% CI %.4f–%.4f, %d/%d runs)",
		r.Yield, r.CILo, r.CIHi, r.Successes, r.Runs)
}

// DefaultChunkSize is the number of trials in one work unit of the chunked
// Monte-Carlo scheduler. Small enough that cancellation is responsive and
// chunks load-balance across workers, large enough to amortize PRNG setup.
const DefaultChunkSize = 256

// MonteCarlo runs reconfiguration-feasibility yield simulations. The zero
// value is not usable; use NewMonteCarlo.
type MonteCarlo struct {
	// Runs per estimate; the paper uses 10000.
	Runs int
	// Seed makes every estimate reproducible.
	Seed int64
	// Workers bounds parallelism; 0 means GOMAXPROCS.
	Workers int
	// ChunkSize is the number of trials per scheduler work unit; 0 means
	// DefaultChunkSize. Each chunk owns a PRNG stream derived from Seed, so
	// an estimate is deterministic in (Seed, Runs, ChunkSize) — independent
	// of Workers and of goroutine scheduling.
	ChunkSize int
	// Scope and Used configure the repair criterion (default: RepairAll).
	Scope reconfig.Scope
	Used  []bool
	// Epsilon, when positive, switches the kernel to precision-targeted
	// adaptive sampling: trials run in the usual chunk-seeded order, but the
	// estimate stops as soon as the Wilson 95% half-width over the
	// deterministic prefix of completed chunks reaches Epsilon, or when the
	// trial budget (MaxRuns, falling back to Runs) is exhausted. The stopping
	// rule is evaluated in chunk-index order regardless of which worker
	// finishes a chunk first, so the realized trial count — and therefore the
	// estimate — is deterministic in (Seed, Epsilon, MaxRuns, ChunkSize),
	// independent of Workers and GOMAXPROCS, exactly like fixed-run
	// estimates. Zero (the default) keeps the fixed-run behavior bit for bit.
	Epsilon float64
	// MaxRuns caps the adaptive trial budget; 0 means Runs. Ignored when
	// Epsilon is zero.
	MaxRuns int
	// FastSampling switches Bernoulli fault injection to geometric
	// skip-sampling (defects.BernoulliGeom): the same fault distribution
	// with O(expected faults) PRNG draws per trial instead of one per cell
	// (clearing the fault set stays O(cells)), which pays off at the high
	// survival probabilities of realistic sweeps. It changes the PRNG
	// draw order, so estimates differ trial-for-trial from the default
	// per-cell scan (still deterministic in Seed/Runs/ChunkSize); leave it
	// off where golden fixtures pin the default order.
	FastSampling bool
	// Metrics, when non-nil, receives kernel observations: trials, the
	// all-healthy fast-path and matcher-invocation split, and per-chunk
	// wall time. Workers accumulate in plain per-worker probes and flush
	// once per chunk, so the steady-state trial path stays allocation- and
	// atomic-free (pinned by the allocs regression tests). nil disables
	// instrumentation entirely.
	Metrics *telemetry.KernelMetrics
	// Logger, when non-nil and enabled at debug, emits one kernel_chunk
	// span event per completed chunk carrying the trace ID found in the
	// run's context (telemetry.TraceID) — the link between a slow HTTP
	// request and the exact chunks that served it. Info and above emit
	// nothing, so production logging costs one Enabled check per estimate.
	Logger *slog.Logger

	// forceScalar runs trials one at a time through the scalar injection
	// path instead of 64-per-word batches, and noMemo disables feasibility
	// memoization. Both are test-only knobs: the differential suite flips
	// them to pin batched == scalar estimates and memoized == direct
	// verdicts. The batch path consumes the identical PRNG stream as the
	// scalar path (trial-major, cell-minor — see defects.BernoulliBatch),
	// so the knobs never change an estimate, only the machinery behind it.
	forceScalar bool
	noMemo      bool
}

// NewMonteCarlo returns a simulator with the paper's defaults (10000 runs).
func NewMonteCarlo(seed int64) *MonteCarlo {
	return &MonteCarlo{Runs: 10000, Seed: seed}
}

// workerCount resolves the worker pool size.
func (mc *MonteCarlo) workerCount() int {
	if mc.Workers > 0 {
		return mc.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// chunkSize resolves the scheduler work-unit size.
func (mc *MonteCarlo) chunkSize() int {
	if mc.ChunkSize > 0 {
		return mc.ChunkSize
	}
	return DefaultChunkSize
}

// trialFunc runs one simulation trial with the worker's injector and reports
// whether the simulated chip survives. All other state a trial touches
// (fault set, reconfiguration session) is owned by the closure, so the
// steady-state trial path performs no heap allocation.
type trialFunc func(in *defects.Injector) (bool, error)

// batchFunc runs a block of trials with the worker's injector and returns
// the number that survived. Implementations pack the block into 64-trial
// machine words (defects.TrialBatch): injection is trial-major so the PRNG
// stream matches the scalar path draw for draw, the all-healthy screen is
// one popcount per word of trials, and only trials that drew faults reach
// a feasibility check.
type batchFunc func(in *defects.Injector, runs int) (int, error)

// trialProgram is one worker's compiled trial body: exactly one of trial
// (scalar, one trial per call) or batch (word-packed blocks) is set.
type trialProgram struct {
	trial trialFunc
	batch batchFunc
}

// kernelProbe accumulates one worker's trial-path observations in plain
// (non-atomic) fields. Each worker owns exactly one probe; the run loop
// flushes and zeroes it at every chunk boundary, so trials pay a plain
// increment and the shared Metrics counters see one atomic add per chunk.
type kernelProbe struct {
	// allHealthy counts trials whose fault draw came up empty (the fast
	// path that never consults the matcher or cascade analysis).
	allHealthy uint64
	// matcher counts trials that reached a feasibility decision.
	matcher uint64
	// memoHits and memoMisses split the feasibility decisions of memoizing
	// sessions: verdicts served from the fault-pattern cache vs solver
	// runs. Both stay zero on paths without memoization. The session
	// increments them directly (reconfig.Session.SetMemoCounters).
	memoHits, memoMisses uint64
}

// trialFactory builds one worker's trial program together with the scratch
// it owns, wiring the worker's probe into the closures. run calls it once
// per worker; workers share nothing but read-only inputs (the array,
// masks, model parameters).
type trialFactory func(probe *kernelProbe) (trialProgram, error)

// run executes mc.Runs independent trials and counts successes. The runs are
// split into fixed-size chunks, each seeded from its own PRNG stream derived
// from mc.Seed, and the chunks are pulled by a bounded worker pool. Because
// seeding is per chunk rather than per worker — each worker reseeds its own
// injector at every chunk boundary — the estimate is deterministic in
// (Seed, Runs, ChunkSize) no matter how many workers execute it or how the
// scheduler interleaves them. Cancellation via ctx is checked between
// chunks, so a cancelled run aborts within one chunk's worth of work per
// worker and returns ctx.Err().
func (mc *MonteCarlo) run(ctx context.Context, factory trialFactory) (Result, error) {
	if mc.Epsilon > 0 {
		return mc.runAdaptive(ctx, factory)
	}
	if mc.Runs <= 0 {
		return Result{}, fmt.Errorf("yieldsim: Runs must be positive, got %d", mc.Runs)
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	// runCtx also stops the chunk producer when a trial error empties the
	// worker pool early, so no goroutine outlives this call.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	chunk := mc.chunkSize()
	numChunks := (mc.Runs + chunk - 1) / chunk
	seeds := stats.SeedStream(mc.Seed, numChunks)
	workers := mc.workerCount()
	if workers > numChunks {
		workers = numChunks
	}

	chunkCh := make(chan int)
	go func() {
		defer close(chunkCh)
		for c := 0; c < numChunks; c++ {
			select {
			case chunkCh <- c:
			case <-runCtx.Done():
				return
			}
		}
	}()

	// Instrumentation is resolved once per estimate: metrics flush per
	// chunk; span events additionally require a logger with debug enabled.
	// The trace ID travels in ctx from the HTTP middleware (or any other
	// caller) down to here, so a chunk span names the request it served.
	spanLog := mc.Logger != nil && mc.Logger.Enabled(ctx, slog.LevelDebug)
	instrumented := mc.Metrics != nil || spanLog
	traceID := telemetry.TraceID(ctx)

	var wg sync.WaitGroup
	successCh := make(chan int, workers)
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var probe kernelProbe
			program, err := factory(&probe)
			if err != nil {
				errCh <- err
				cancel()
				return
			}
			in := defects.NewInjector(0) // reseeded per chunk below
			successes := 0
			for c := range chunkCh {
				if runCtx.Err() != nil {
					break
				}
				runs := chunk
				if c == numChunks-1 {
					runs = mc.Runs - c*chunk
				}
				in.Reseed(seeds[c])
				var chunkStart time.Time
				if instrumented {
					chunkStart = time.Now()
				}
				chunkSuccesses := 0
				if program.batch != nil {
					chunkSuccesses, err = program.batch(in, runs)
					if err != nil {
						errCh <- err
						cancel()
						return
					}
				} else {
					for i := 0; i < runs; i++ {
						ok, err := program.trial(in)
						if err != nil {
							errCh <- err
							cancel()
							return
						}
						if ok {
							chunkSuccesses++
						}
					}
				}
				successes += chunkSuccesses
				if instrumented {
					elapsed := time.Since(chunkStart)
					if m := mc.Metrics; m != nil {
						m.Trials.Add(uint64(runs))
						m.AllHealthy.Add(probe.allHealthy)
						m.MatcherInvocations.Add(probe.matcher)
						m.MemoHits.Add(probe.memoHits)
						m.MemoMisses.Add(probe.memoMisses)
						m.ChunkSeconds.Observe(elapsed.Seconds())
					}
					if spanLog {
						mc.Logger.LogAttrs(runCtx, slog.LevelDebug, "kernel_chunk",
							slog.String("trace_id", traceID),
							slog.Int("chunk", c),
							slog.Int("trials", runs),
							slog.Int("successes", chunkSuccesses),
							slog.Uint64("all_healthy", probe.allHealthy),
							slog.Uint64("matcher", probe.matcher),
							slog.Uint64("memo_hits", probe.memoHits),
							slog.Uint64("memo_misses", probe.memoMisses),
							slog.Float64("duration_ms", float64(elapsed.Microseconds())/1000),
						)
					}
					probe.allHealthy, probe.matcher = 0, 0
					probe.memoHits, probe.memoMisses = 0, 0
				}
			}
			successCh <- successes
		}()
	}
	wg.Wait()
	close(successCh)
	close(errCh)
	// A trial error takes precedence: it is what cancelled runCtx.
	if err := <-errCh; err != nil {
		return Result{}, err
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	total := 0
	for s := range successCh {
		total += s
	}
	return newResult(total, mc.Runs), nil
}

// sessionOptions assembles the reconfiguration options of the simulator's
// repair criterion.
func (mc *MonteCarlo) sessionOptions() reconfig.Options {
	return reconfig.Options{Scope: mc.Scope, Used: mc.Used}
}

// bernoulliSampler selects the Bernoulli injection routine over an array:
// the per-cell scan by default (whose PRNG draw order golden fixtures
// depend on), the geometric skip-sampler when FastSampling is set.
func (mc *MonteCarlo) bernoulliSampler() func(*defects.Injector, *layout.Array, float64, *defects.FaultSet) *defects.FaultSet {
	if mc.FastSampling {
		return (*defects.Injector).BernoulliGeom
	}
	return (*defects.Injector).Bernoulli
}

// bernoulliSamplerN is bernoulliSampler for dense generically indexed cells.
func (mc *MonteCarlo) bernoulliSamplerN() func(*defects.Injector, int, float64, *defects.FaultSet) *defects.FaultSet {
	if mc.FastSampling {
		return (*defects.Injector).BernoulliGeomN
	}
	return (*defects.Injector).BernoulliN
}

// bernoulliBatcher selects the word-packed Bernoulli injection routine: the
// batched forms consume the identical PRNG stream as the scalar samplers
// above, so switching between them never changes an estimate.
func (mc *MonteCarlo) bernoulliBatcher() func(*defects.Injector, int, float64, int, *defects.TrialBatch) {
	if mc.FastSampling {
		return (*defects.Injector).BernoulliGeomBatch
	}
	return (*defects.Injector).BernoulliBatch
}

// enableMemo arms feasibility memoization on a worker's session when the
// array is small enough and the simulator hasn't opted out, pointing the
// hit/miss counters at the worker's probe. On large arrays EnableMemo
// refuses and the session simply solves every query.
func (mc *MonteCarlo) enableMemo(sess *reconfig.Session, probe *kernelProbe) {
	if mc.noMemo {
		return
	}
	if sess.EnableMemo(reconfig.DefaultMemoCapacity) {
		sess.SetMemoCounters(&probe.memoHits, &probe.memoMisses)
	}
}

// feasBatchVerdicts scores one injected batch: all-healthy trials (clear
// bits of the occupied mask) succeed without any feasibility machinery;
// the rest are transposed into per-trial fault words and judged by the
// session, word layout to word layout with no FaultSet in between.
func feasBatchVerdicts(b *defects.TrialBatch, sess *reconfig.Session, probe *kernelProbe, n int) (int, error) {
	occ := b.Occupied()
	healthy := n - bits.OnesCount64(occ)
	probe.allHealthy += uint64(healthy)
	successes := healthy
	if occ == 0 {
		return successes, nil
	}
	b.Finalize()
	for m := occ; m != 0; m &= m - 1 {
		t := bits.TrailingZeros64(m)
		probe.matcher++
		ok, err := sess.FeasibleWords(b.Row(t))
		if err != nil {
			return 0, err
		}
		if ok {
			successes++
		}
	}
	return successes, nil
}

// Yield estimates the yield of the array at cell survival probability p:
// every cell (primary and spare) fails independently with probability 1−p,
// and the chip survives iff local reconfiguration repairs all faulty
// primaries.
func (mc *MonteCarlo) Yield(arr *layout.Array, p float64) (Result, error) {
	return mc.YieldContext(context.Background(), arr, p)
}

// YieldContext is Yield with cancellation: a cancelled ctx aborts the
// simulation between chunks and returns ctx.Err().
func (mc *MonteCarlo) YieldContext(ctx context.Context, arr *layout.Array, p float64) (Result, error) {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return Result{}, fmt.Errorf("yieldsim: survival probability %v outside [0,1]", p)
	}
	return mc.run(ctx, mc.yieldTrials(arr, p))
}

// yieldTrials is the factory of the steady-state Bernoulli trial program:
// inject i.i.d. faults 64 trials per machine word, screen the all-healthy
// trials with one popcount, and ask the worker's (memoizing) session for a
// word-parallel feasibility verdict on the rest. Each worker owns its
// batch and session; after the factory's one-time construction the trial
// path is allocation-free (pinned by the allocs regression tests). The
// scalar program behind forceScalar draws the identical PRNG stream and
// produces the identical estimate.
func (mc *MonteCarlo) yieldTrials(arr *layout.Array, p float64) trialFactory {
	opts := mc.sessionOptions()
	numCells := arr.NumCells()
	return func(probe *kernelProbe) (trialProgram, error) {
		sess, err := reconfig.NewSession(arr, opts)
		if err != nil {
			return trialProgram{}, err
		}
		mc.enableMemo(sess, probe)
		if mc.forceScalar {
			sample := mc.bernoulliSampler()
			fs := defects.NewFaultSet(numCells)
			return trialProgram{trial: func(in *defects.Injector) (bool, error) {
				fs = sample(in, arr, p, fs)
				if fs.Count() == 0 {
					probe.allHealthy++
				} else {
					probe.matcher++
				}
				return sess.Feasible(fs)
			}}, nil
		}
		inject := mc.bernoulliBatcher()
		tb := defects.NewTrialBatch(numCells)
		return trialProgram{batch: func(in *defects.Injector, runs int) (int, error) {
			successes := 0
			for off := 0; off < runs; off += defects.WordTrials {
				n := runs - off
				if n > defects.WordTrials {
					n = defects.WordTrials
				}
				inject(in, numCells, p, n, tb)
				s, err := feasBatchVerdicts(tb, sess, probe, n)
				if err != nil {
					return 0, err
				}
				successes += s
			}
			return successes, nil
		}}, nil
	}
}

// YieldFixedFaults estimates the yield of the array when exactly m cells
// (drawn uniformly from the domain) fail — the case-study experiment of
// paper Fig. 13.
func (mc *MonteCarlo) YieldFixedFaults(arr *layout.Array, m int, domain defects.Domain) (Result, error) {
	return mc.YieldFixedFaultsContext(context.Background(), arr, m, domain)
}

// YieldFixedFaultsContext is YieldFixedFaults with cancellation.
func (mc *MonteCarlo) YieldFixedFaultsContext(ctx context.Context, arr *layout.Array, m int, domain defects.Domain) (Result, error) {
	if m < 0 {
		return Result{}, fmt.Errorf("yieldsim: negative fault count %d", m)
	}
	return mc.run(ctx, mc.fixedFaultsTrials(arr, m, domain))
}

// fixedFaultsTrials is the factory of the fixed-count trial: exactly m
// faults per draw (from the injector's cached pool), then a session
// verdict. The draw has no batched form (partial Fisher–Yates is
// inherently per-trial), but the session still memoizes: with m small the
// pattern space is tiny and repeats are the common case.
func (mc *MonteCarlo) fixedFaultsTrials(arr *layout.Array, m int, domain defects.Domain) trialFactory {
	opts := mc.sessionOptions()
	return func(probe *kernelProbe) (trialProgram, error) {
		sess, err := reconfig.NewSession(arr, opts)
		if err != nil {
			return trialProgram{}, err
		}
		mc.enableMemo(sess, probe)
		fs := defects.NewFaultSet(arr.NumCells())
		return trialProgram{trial: func(in *defects.Injector) (bool, error) {
			next, err := in.FixedCount(arr, m, domain, fs)
			if err != nil {
				return false, err
			}
			fs = next
			if fs.Count() == 0 {
				probe.allHealthy++
			} else {
				probe.matcher++
			}
			return sess.Feasible(fs)
		}}, nil
	}
}

// NoRedundancyMC estimates the no-redundancy yield by simulation (all n
// working cells must survive). It exists to cross-check NoRedundancy.
func (mc *MonteCarlo) NoRedundancyMC(arr *layout.Array, p float64) (Result, error) {
	return mc.NoRedundancyMCContext(context.Background(), arr, p)
}

// NoRedundancyMCContext is NoRedundancyMC with cancellation.
func (mc *MonteCarlo) NoRedundancyMCContext(ctx context.Context, arr *layout.Array, p float64) (Result, error) {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return Result{}, fmt.Errorf("yieldsim: survival probability %v outside [0,1]", p)
	}
	return mc.run(ctx, mc.noRedundancyTrials(arr, p))
}

// noRedundancyTrials is the factory of the baseline trial program: the
// chip survives iff no primary is faulty. The batched form screens healthy
// trials on the occupied mask and settles the rest with one AND against a
// shared read-only primary bitset — no matcher, no session, no FaultSet.
func (mc *MonteCarlo) noRedundancyTrials(arr *layout.Array, p float64) trialFactory {
	numCells := arr.NumCells()
	primaryMask := make([]uint64, (numCells+63)/64) // read-only across workers
	for _, id := range arr.Primaries() {
		primaryMask[id>>6] |= uint64(1) << (uint(id) & 63)
	}
	return func(probe *kernelProbe) (trialProgram, error) {
		if mc.forceScalar {
			sample := mc.bernoulliSampler()
			fs := defects.NewFaultSet(numCells)
			return trialProgram{trial: func(in *defects.Injector) (bool, error) {
				fs = sample(in, arr, p, fs)
				if fs.Count() == 0 {
					probe.allHealthy++
				}
				return !fs.AnyFaultyPrimary(arr), nil
			}}, nil
		}
		inject := mc.bernoulliBatcher()
		tb := defects.NewTrialBatch(numCells)
		return trialProgram{batch: func(in *defects.Injector, runs int) (int, error) {
			successes := 0
			for off := 0; off < runs; off += defects.WordTrials {
				n := runs - off
				if n > defects.WordTrials {
					n = defects.WordTrials
				}
				inject(in, numCells, p, n, tb)
				occ := tb.Occupied()
				healthy := n - bits.OnesCount64(occ)
				probe.allHealthy += uint64(healthy)
				successes += healthy
				if occ == 0 {
					continue
				}
				tb.Finalize()
				for m := occ; m != 0; m &= m - 1 {
					row := tb.Row(bits.TrailingZeros64(m))
					primaryFault := false
					for w, pm := range primaryMask {
						if row[w]&pm != 0 {
							primaryFault = true
							break
						}
					}
					if !primaryFault {
						successes++
					}
				}
			}
			return successes, nil
		}}, nil
	}
}

// ShiftedYield estimates the yield of a boundary-spare-row placement under
// shifted replacement: every cell (working, unused, and spare) fails i.i.d.
// with probability 1−p, and the chip survives iff every faulty working cell's
// function can cascade down its column into a spare row (paper Fig. 2).
// Faults are repaired deepest-first; faulty or already-consumed cells block
// a cascade, so under this strict adjacent-shifting scheme a column absorbs
// at most one repair. Spare rows beyond the first therefore add fallible
// area without adding repair capacity — which is exactly the scaling problem
// the paper holds against boundary redundancy, and what a sweep over the
// spare-row axis exhibits as flat yield with falling effective yield.
func (mc *MonteCarlo) ShiftedYield(pl sqgrid.Placement, p float64) (Result, error) {
	return mc.ShiftedYieldContext(context.Background(), pl, p)
}

// ShiftedYieldContext is ShiftedYield with cancellation.
func (mc *MonteCarlo) ShiftedYieldContext(ctx context.Context, pl sqgrid.Placement, p float64) (Result, error) {
	return mc.ShiftedYieldModelContext(ctx, pl, p, defects.Model{})
}

// ShiftedYieldModelContext is ShiftedYieldContext under an explicit spatial
// defect model: the zero model is the independent Bernoulli assumption of
// ShiftedYield; the clustered model draws Chebyshev-ring clusters on the
// square grid targeting the same expected defect density (1−p)·N. Column
// redundancy is notoriously fragile under clustering — one cluster spanning
// two columns of a module kills both cascades — which is exactly what this
// estimator lets a sweep exhibit.
func (mc *MonteCarlo) ShiftedYieldModelContext(ctx context.Context, pl sqgrid.Placement, p float64, model defects.Model) (Result, error) {
	factory, err := mc.shiftedTrials(pl, p, model)
	if err != nil {
		return Result{}, err
	}
	return mc.run(ctx, factory)
}

// shiftedTrials validates the shifted-replacement inputs and returns the
// per-worker trial factory (the column-cascade closed form plus the
// model's injector).
func (mc *MonteCarlo) shiftedTrials(pl sqgrid.Placement, p float64, model defects.Model) (trialFactory, error) {
	if math.IsNaN(p) || p < 0 || p > 1 {
		return nil, fmt.Errorf("yieldsim: survival probability %v outside [0,1]", p)
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	if pl.SpareRows < 1 {
		return nil, fmt.Errorf("yieldsim: shifted replacement needs at least one spare row")
	}
	// Under the strict scheme survival decomposes per column (cascades are
	// strictly vertical): a column with no faulty working cell is fine; one
	// with two or more fails (the shallower cascade is blocked by the deeper
	// fault); one with exactly one fault at row y survives iff every cell
	// from y+1 down to the first spare row is fault-free (any faulty cell —
	// working, unused, or spare — blocks the cascade, whose absorber is the
	// column's first spare cell). This closed form of the ShiftSession
	// semantics keeps the trial allocation-free; the equivalence is pinned
	// by a reference test against reconfig.ShiftSession.
	used := make([]bool, pl.Grid.NumCells()) // read-only across workers
	for _, c := range pl.UsedCells() {
		used[pl.Grid.Index(c)] = true
	}
	w, h := pl.Grid.W, pl.Grid.H
	firstSpare := h - pl.SpareRows
	n := pl.Grid.NumCells()
	cascadesRepairAll := func(fs *defects.FaultSet) bool {
		if fs.Count() == 0 {
			return true
		}
		for x := 0; x < w; x++ {
			faultyUsed, deepest := 0, -1
			for y := 0; y < firstSpare; y++ {
				id := layout.CellID(y*w + x)
				if used[id] && fs.IsFaulty(id) {
					faultyUsed++
					deepest = y
				}
			}
			if faultyUsed == 0 {
				continue
			}
			if faultyUsed > 1 {
				return false
			}
			for y := deepest + 1; y <= firstSpare; y++ {
				if fs.IsFaulty(layout.CellID(y*w + x)) {
					return false
				}
			}
		}
		return true
	}
	if model.Clustered {
		cp := model.Params(p, n)
		return func(probe *kernelProbe) (trialProgram, error) {
			fs := defects.NewFaultSet(n)
			return trialProgram{trial: func(in *defects.Injector) (bool, error) {
				next, _, err := in.ClusteredGrid(w, h, cp, fs)
				if err != nil {
					return false, err
				}
				fs = next
				if fs.Count() == 0 {
					probe.allHealthy++
				} else {
					probe.matcher++
				}
				return cascadesRepairAll(fs), nil
			}}, nil
		}, nil
	}
	sample := mc.bernoulliSamplerN()
	return func(probe *kernelProbe) (trialProgram, error) {
		fs := defects.NewFaultSet(n)
		return trialProgram{trial: func(in *defects.Injector) (bool, error) {
			fs = sample(in, n, p, fs)
			if fs.Count() == 0 {
				probe.allHealthy++
			} else {
				probe.matcher++
			}
			return cascadesRepairAll(fs), nil
		}}, nil
	}, nil
}

// YieldModelContext is YieldContext under an explicit spatial defect model:
// the zero model reproduces YieldContext's independent Bernoulli failures,
// and the clustered model draws hexagonal-ring clusters targeting the same
// expected defect density (1−p)·N, so the two models are comparable
// point-for-point along the p axis. The chunk-seeded kernel keeps either
// estimate deterministic in (Seed, Runs, ChunkSize) regardless of Workers.
func (mc *MonteCarlo) YieldModelContext(ctx context.Context, arr *layout.Array, p float64, model defects.Model) (Result, error) {
	if !model.Clustered {
		return mc.YieldContext(ctx, arr, p)
	}
	if math.IsNaN(p) || p < 0 || p > 1 {
		return Result{}, fmt.Errorf("yieldsim: survival probability %v outside [0,1]", p)
	}
	if err := model.Validate(); err != nil {
		return Result{}, err
	}
	cp := model.Params(p, arr.NumCells())
	return mc.run(ctx, mc.clusteredTrials(arr, cp))
}

// clusteredTrials is the factory of the clustered-defect trial program:
// word-packed center-seeded cluster draws, an all-healthy popcount screen,
// then memoized session verdicts for the occupied trials.
func (mc *MonteCarlo) clusteredTrials(arr *layout.Array, cp defects.ClusterParams) trialFactory {
	opts := mc.sessionOptions()
	numCells := arr.NumCells()
	return func(probe *kernelProbe) (trialProgram, error) {
		sess, err := reconfig.NewSession(arr, opts)
		if err != nil {
			return trialProgram{}, err
		}
		mc.enableMemo(sess, probe)
		if mc.forceScalar {
			fs := defects.NewFaultSet(numCells)
			return trialProgram{trial: func(in *defects.Injector) (bool, error) {
				next, _, err := in.Clustered(arr, cp, fs)
				if err != nil {
					return false, err
				}
				fs = next
				if fs.Count() == 0 {
					probe.allHealthy++
				} else {
					probe.matcher++
				}
				return sess.Feasible(fs)
			}}, nil
		}
		tb := defects.NewTrialBatch(numCells)
		return trialProgram{batch: func(in *defects.Injector, runs int) (int, error) {
			successes := 0
			for off := 0; off < runs; off += defects.WordTrials {
				n := runs - off
				if n > defects.WordTrials {
					n = defects.WordTrials
				}
				if _, err := in.ClusteredBatch(arr, cp, n, tb); err != nil {
					return 0, err
				}
				s, err := feasBatchVerdicts(tb, sess, probe, n)
				if err != nil {
					return 0, err
				}
				successes += s
			}
			return successes, nil
		}}, nil
	}
}

// HexYield is the outcome of a hexagonal-footprint yield estimate: the
// Monte-Carlo result plus the realized cell counts of the hexagon build
// (NTotal exceeds NPrimary by the interstitial spares).
type HexYield struct {
	Result
	NPrimary, NTotal int
}

// HexYieldContext estimates the yield of design d instantiated over a
// regular hexagonal chip footprint with nPrimary primary cells
// (layout.BuildHexagonWithPrimaryTarget) under the given spatial defect
// model. Repair is the same local-reconfiguration matcher over the
// six-neighbor topology used for parallelogram arrays — the bipartite
// matching is footprint-agnostic — so differences against YieldModelContext
// at equal n isolate the boundary shape.
func (mc *MonteCarlo) HexYieldContext(ctx context.Context, d layout.Design, nPrimary int, p float64, model defects.Model) (HexYield, error) {
	arr, err := layout.BuildHexagonWithPrimaryTarget(d, nPrimary)
	if err != nil {
		return HexYield{}, err
	}
	res, err := mc.YieldModelContext(ctx, arr, p, model)
	if err != nil {
		return HexYield{}, err
	}
	return HexYield{Result: res, NPrimary: arr.NumPrimary(), NTotal: arr.NumCells()}, nil
}

// SweepPoint is one (p, yield) sample of a sweep.
type SweepPoint struct {
	P      float64
	Result Result
}

// SweepYield estimates yield across the given survival probabilities,
// returning one point per p.
func (mc *MonteCarlo) SweepYield(arr *layout.Array, ps []float64) ([]SweepPoint, error) {
	return mc.SweepYieldContext(context.Background(), arr, ps)
}

// SweepYieldContext is SweepYield with cancellation between points. A
// context that is already cancelled fails before the first point is
// evaluated (or any array work happens), not after it.
func (mc *MonteCarlo) SweepYieldContext(ctx context.Context, arr *layout.Array, ps []float64) ([]SweepPoint, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]SweepPoint, 0, len(ps))
	for _, p := range ps {
		res, err := mc.YieldContext(ctx, arr, p)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{P: p, Result: res})
	}
	return out, nil
}

// SweepSeries converts sweep points to a stats.Series for tabulation.
func SweepSeries(name string, pts []SweepPoint) stats.Series {
	s := stats.Series{Name: name}
	for _, pt := range pts {
		s.Append(pt.P, pt.Result.Yield)
	}
	return s
}
