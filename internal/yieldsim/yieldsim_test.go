package yieldsim

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"dmfb/internal/defects"
	"dmfb/internal/layout"
	"dmfb/internal/reconfig"
	"dmfb/internal/sqgrid"
	"dmfb/internal/stats"
)

func buildArray(t testing.TB, d layout.Design, n int) *layout.Array {
	t.Helper()
	arr, err := layout.BuildWithPrimaryTarget(d, n)
	if err != nil {
		t.Fatal(err)
	}
	return arr
}

func TestNoRedundancyPaperNumber(t *testing.T) {
	// Paper §7: "It is only 0.3378 even if the survival probability of a
	// single cell is as high as 0.99" for the 108-cell assay footprint.
	got := NoRedundancy(0.99, 108)
	if math.Abs(got-0.3378) > 5e-4 {
		t.Errorf("NoRedundancy(0.99, 108) = %.4f, want 0.3378", got)
	}
}

func TestNoRedundancyEdgeCases(t *testing.T) {
	if NoRedundancy(0.5, 0) != 1 {
		t.Error("zero cells must yield 1")
	}
	if NoRedundancy(0.5, -1) != 0 {
		t.Error("negative n must yield 0")
	}
	if NoRedundancy(1, 1000) != 1 || NoRedundancy(0, 5) != 0 {
		t.Error("degenerate probabilities wrong")
	}
}

func TestClusterYieldFormula(t *testing.T) {
	// Hand-computed: p = 0.95 -> Yc = 0.95^7 + 7·0.95^6·0.05 ≈ 0.955562,
	// Y(n=120) = Yc^20 ≈ 0.40287.
	yc := math.Pow(0.95, 7) + 7*math.Pow(0.95, 6)*0.05
	want := math.Pow(yc, 20)
	got := ClusterYieldDTMB16(0.95, 120)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("ClusterYieldDTMB16(0.95,120) = %v, want %v", got, want)
	}
	if ClusterYieldDTMB16(1, 600) != 1 {
		t.Error("p=1 must yield 1")
	}
	if ClusterYieldDTMB16(0, 6) != 0 {
		t.Error("p=0 must yield 0")
	}
	if ClusterYieldDTMB16(0.9, -5) != 0 {
		t.Error("negative n must yield 0")
	}
}

func TestClusterYieldBeatsNoRedundancy(t *testing.T) {
	// Paper Fig. 7: interstitial redundancy improves yield at every p < 1.
	for _, p := range []float64{0.90, 0.95, 0.99} {
		for _, n := range []int{60, 120, 240} {
			if ClusterYieldDTMB16(p, n) <= NoRedundancy(p, n) {
				t.Errorf("p=%v n=%d: DTMB(1,6) %v not above no-redundancy %v",
					p, n, ClusterYieldDTMB16(p, n), NoRedundancy(p, n))
			}
		}
	}
}

func TestClusterYieldMonotone(t *testing.T) {
	prev := 0.0
	for _, p := range stats.Linspace(0.5, 1.0, 26) {
		y := ClusterYieldDTMB16(p, 120)
		if y < prev-1e-12 {
			t.Fatalf("yield not monotone at p=%v", p)
		}
		prev = y
	}
}

func TestEffectiveYield(t *testing.T) {
	if got := EffectiveYield(0.9, 0.5); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("EffectiveYield = %v, want 0.6", got)
	}
	// EY via counts must match EY via RR for consistent n, N.
	y := 0.8
	n, total := 252, 343
	rr := float64(total-n) / float64(n)
	a := EffectiveYieldCells(y, n, total)
	b := EffectiveYield(y, rr)
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("EY mismatch: cells %v vs rr %v", a, b)
	}
	if EffectiveYieldCells(1, 1, 0) != 0 {
		t.Error("zero total cells must give 0")
	}
}

func TestMonteCarloDegenerateProbabilities(t *testing.T) {
	arr := buildArray(t, layout.DTMB26(), 60)
	mc := NewMonteCarlo(1)
	mc.Runs = 200
	res, err := mc.Yield(arr, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Yield != 1 {
		t.Errorf("p=1 yield %v", res.Yield)
	}
	res, err = mc.Yield(arr, 0.0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Yield != 0 {
		t.Errorf("p=0 yield %v", res.Yield)
	}
}

func TestMonteCarloParameterValidation(t *testing.T) {
	arr := buildArray(t, layout.DTMB26(), 30)
	mc := NewMonteCarlo(1)
	if _, err := mc.Yield(arr, 1.5); err == nil {
		t.Error("p>1 accepted")
	}
	if _, err := mc.Yield(arr, -0.1); err == nil {
		t.Error("p<0 accepted")
	}
	if _, err := mc.YieldFixedFaults(arr, -1, defects.AllCells); err == nil {
		t.Error("negative m accepted")
	}
	mc.Runs = 0
	if _, err := mc.Yield(arr, 0.9); err == nil {
		t.Error("zero runs accepted")
	}
}

func TestMonteCarloDeterministicPerSeed(t *testing.T) {
	arr := buildArray(t, layout.DTMB36(), 60)
	a := NewMonteCarlo(42)
	a.Runs = 500
	a.Workers = 4
	b := NewMonteCarlo(42)
	b.Runs = 500
	b.Workers = 4
	ra, err := a.Yield(arr, 0.93)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Yield(arr, 0.93)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Successes != rb.Successes {
		t.Errorf("same seed, different outcomes: %d vs %d", ra.Successes, rb.Successes)
	}
}

func TestMonteCarloMatchesClusterModelForDTMB16(t *testing.T) {
	// On a cluster-complete DTMB(1,6) array the closed-form model is exact,
	// so the matching-based Monte-Carlo must agree within its confidence
	// interval.
	arr, err := layout.BuildClusterCompleteDTMB16(20) // n = 120
	if err != nil {
		t.Fatal(err)
	}
	if arr.NumPrimary() != 120 {
		t.Fatalf("cluster-complete array has %d primaries, want 120", arr.NumPrimary())
	}
	mc := NewMonteCarlo(7)
	mc.Runs = 6000
	for _, p := range []float64{0.95, 0.98, 0.99} {
		res, err := mc.Yield(arr, p)
		if err != nil {
			t.Fatal(err)
		}
		analytic := ClusterYieldDTMB16(p, arr.NumPrimary())
		if analytic < res.CILo-0.01 || analytic > res.CIHi+0.01 {
			t.Errorf("p=%v: analytic %v outside MC interval [%v, %v]",
				p, analytic, res.CILo, res.CIHi)
		}
	}
}

func TestBoundaryEffectsLowerParallelogramYield(t *testing.T) {
	// Parallelogram DTMB(1,6) arrays leave some boundary primaries without
	// an in-array spare, so their Monte-Carlo yield falls below the
	// cluster-complete ideal — the boundary-effects ablation.
	para := buildArray(t, layout.DTMB16(), 120)
	ideal, err := layout.BuildClusterCompleteDTMB16(20)
	if err != nil {
		t.Fatal(err)
	}
	mc := NewMonteCarlo(13)
	mc.Runs = 3000
	p := 0.97
	rp, err := mc.Yield(para, p)
	if err != nil {
		t.Fatal(err)
	}
	ri, err := mc.Yield(ideal, p)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Yield >= ri.Yield {
		t.Errorf("parallelogram yield %v not below cluster-complete yield %v",
			rp.Yield, ri.Yield)
	}
}

func TestMonteCarloYieldMonotoneInP(t *testing.T) {
	arr := buildArray(t, layout.DTMB26(), 100)
	mc := NewMonteCarlo(3)
	mc.Runs = 2000
	prev := -1.0
	for _, p := range []float64{0.85, 0.90, 0.95, 0.99} {
		res, err := mc.Yield(arr, p)
		if err != nil {
			t.Fatal(err)
		}
		// Allow tiny Monte-Carlo wiggle.
		if res.Yield < prev-0.03 {
			t.Errorf("yield dropped from %v to %v at p=%v", prev, res.Yield, p)
		}
		prev = res.Yield
	}
}

func TestHigherRedundancyHigherYield(t *testing.T) {
	// Paper Fig. 9: at fixed p and n, DTMB(4,4) ≥ DTMB(3,6) ≥ DTMB(2,6).
	mc := NewMonteCarlo(11)
	mc.Runs = 2000
	p := 0.95
	var yields []float64
	for _, d := range []layout.Design{layout.DTMB26(), layout.DTMB36(), layout.DTMB44()} {
		arr := buildArray(t, d, 100)
		res, err := mc.Yield(arr, p)
		if err != nil {
			t.Fatal(err)
		}
		yields = append(yields, res.Yield)
	}
	for i := 1; i < len(yields); i++ {
		if yields[i] < yields[i-1]-0.03 {
			t.Errorf("redundancy level %d yield %v below level %d yield %v",
				i, yields[i], i-1, yields[i-1])
		}
	}
}

func TestYieldFixedFaultsBasics(t *testing.T) {
	arr := buildArray(t, layout.DTMB26(), 100)
	mc := NewMonteCarlo(5)
	mc.Runs = 500
	res, err := mc.YieldFixedFaults(arr, 0, defects.AllCells)
	if err != nil {
		t.Fatal(err)
	}
	if res.Yield != 1 {
		t.Errorf("m=0 yield %v, want 1", res.Yield)
	}
	// Yield decreases (weakly) with m.
	prev := 1.0
	for _, m := range []int{5, 15, 40, 80} {
		res, err := mc.YieldFixedFaults(arr, m, defects.AllCells)
		if err != nil {
			t.Fatal(err)
		}
		if res.Yield > prev+0.03 {
			t.Errorf("yield increased with more faults at m=%d: %v > %v", m, res.Yield, prev)
		}
		prev = res.Yield
	}
}

func TestYieldFixedFaultsDomainsDiffer(t *testing.T) {
	// At equal m, faults over all cells hit spares too and destroy repair
	// capacity: measured yield is *lower* than with faults confined to
	// primaries, even though the latter creates more repair demands. (Each
	// dead spare strands up to p primaries; demand grows only one repair
	// per fault.) This asymmetry is recorded in EXPERIMENTS.md.
	arr := buildArray(t, layout.DTMB26(), 100)
	mc := NewMonteCarlo(9)
	mc.Runs = 1500
	m := 20
	all, err := mc.YieldFixedFaults(arr, m, defects.AllCells)
	if err != nil {
		t.Fatal(err)
	}
	prim, err := mc.YieldFixedFaults(arr, m, defects.PrimariesOnly)
	if err != nil {
		t.Fatal(err)
	}
	if all.Yield > prim.Yield+0.05 {
		t.Errorf("all-cells yield %v above primaries-only %v: spare attrition should dominate",
			all.Yield, prim.Yield)
	}
	if _, err := mc.YieldFixedFaults(arr, arr.NumPrimary()+1, defects.PrimariesOnly); err == nil {
		t.Error("m beyond domain size accepted")
	}
}

func TestNoRedundancyMCMatchesFormula(t *testing.T) {
	arr := buildArray(t, layout.DTMB26(), 100)
	mc := NewMonteCarlo(21)
	mc.Runs = 4000
	p := 0.99
	res, err := mc.NoRedundancyMC(arr, p)
	if err != nil {
		t.Fatal(err)
	}
	want := NoRedundancy(p, arr.NumPrimary())
	// A 95% interval misses the true value for ~1 in 20 seeds; allow a small
	// slack beyond the interval so the check tests correctness, not luck.
	const slack = 0.01
	if res.CILo-slack > want || res.CIHi+slack < want {
		t.Errorf("formula %v outside MC interval [%v, %v]", want, res.CILo, res.CIHi)
	}
	if _, err := mc.NoRedundancyMC(arr, 2); err == nil {
		t.Error("p>1 accepted")
	}
}

func TestRepairUsedScopeRaisesYield(t *testing.T) {
	arr := buildArray(t, layout.DTMB16(), 100)
	used := make([]bool, arr.NumCells())
	// Mark only half the primaries as used.
	for i, id := range arr.Primaries() {
		if i%2 == 0 {
			used[id] = true
		}
	}
	all := NewMonteCarlo(33)
	all.Runs = 1500
	scoped := NewMonteCarlo(33)
	scoped.Runs = 1500
	scoped.Scope = reconfig.RepairUsed
	scoped.Used = used

	p := 0.95
	ra, err := all.Yield(arr, p)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := scoped.Yield(arr, p)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Yield < ra.Yield-0.02 {
		t.Errorf("repair-used yield %v below repair-all %v", rs.Yield, ra.Yield)
	}
}

func TestSweepYieldAndSeries(t *testing.T) {
	arr := buildArray(t, layout.DTMB26(), 60)
	mc := NewMonteCarlo(2)
	mc.Runs = 300
	ps := []float64{0.9, 0.95, 1.0}
	pts, err := mc.SweepYield(arr, ps)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	series := SweepSeries("test", pts)
	if series.Len() != 3 || series.Name != "test" {
		t.Error("series conversion wrong")
	}
	if y, ok := series.YAt(1.0); !ok || y != 1 {
		t.Errorf("yield at p=1 should be 1, got %v", y)
	}
}

func TestResultStringAndCI(t *testing.T) {
	r := newResult(90, 100)
	if r.Yield != 0.9 || r.CILo >= r.CIHi {
		t.Errorf("bad result %+v", r)
	}
	if r.CILo > 0.9 || r.CIHi < 0.9 {
		t.Error("point estimate outside CI")
	}
	s := r.String()
	if !strings.Contains(s, "0.9000") || !strings.Contains(s, "90/100") {
		t.Errorf("String() = %q", s)
	}
}

func TestMonteCarloDeterministicAcrossWorkerCounts(t *testing.T) {
	// Chunked seeding makes the estimate a function of (Seed, Runs,
	// ChunkSize) only: any worker count must reproduce it exactly.
	arr := buildArray(t, layout.DTMB36(), 60)
	var want int
	for i, workers := range []int{1, 2, 3, 8} {
		mc := NewMonteCarlo(42)
		mc.Runs = 500
		mc.Workers = workers
		mc.ChunkSize = 64
		res, err := mc.Yield(arr, 0.93)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = res.Successes
		} else if res.Successes != want {
			t.Errorf("workers=%d: %d successes, want %d", workers, res.Successes, want)
		}
	}
}

func TestMonteCarloContextCancellation(t *testing.T) {
	arr := buildArray(t, layout.DTMB26(), 60)
	mc := NewMonteCarlo(1)
	mc.Runs = 200

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := mc.YieldContext(ctx, arr, 0.95); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled context: err = %v, want context.Canceled", err)
	}
	if _, err := mc.YieldFixedFaultsContext(ctx, arr, 5, defects.AllCells); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled context (fixed faults): err = %v, want context.Canceled", err)
	}
	if _, err := mc.NoRedundancyMCContext(ctx, arr, 0.95); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled context (no-redundancy): err = %v, want context.Canceled", err)
	}
	if _, err := mc.SweepYieldContext(ctx, arr, []float64{0.9}); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled context (sweep): err = %v, want context.Canceled", err)
	}
}

func TestTrialErrorDoesNotLeakGoroutines(t *testing.T) {
	// When every worker dies on a trial error, the chunk producer must be
	// cancelled rather than blocking forever on an undrained channel.
	arr := buildArray(t, layout.DTMB26(), 60)
	mc := NewMonteCarlo(1)
	mc.Runs = 10000
	mc.ChunkSize = 8 // many chunks, so the producer outlives the first error
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		// m > NumCells makes the very first trial of every worker error.
		if _, err := mc.YieldFixedFaults(arr, arr.NumCells()+1, defects.AllCells); err == nil {
			t.Fatal("oversized fault count accepted")
		}
	}
	// Give exiting goroutines a moment to unwind.
	for i := 0; i < 100 && runtime.NumGoroutine() > before+2; i++ {
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Errorf("goroutines grew from %d to %d across failing runs", before, after)
	}
}

func TestWorkersClampedToRuns(t *testing.T) {
	arr := buildArray(t, layout.DTMB26(), 30)
	mc := NewMonteCarlo(4)
	mc.Runs = 3
	mc.Workers = 16
	res, err := mc.Yield(arr, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != 3 {
		t.Errorf("Runs = %d, want 3", res.Runs)
	}
}

func BenchmarkMonteCarloYieldDTMB26N100(b *testing.B) {
	arr, err := layout.BuildWithPrimaryTarget(layout.DTMB26(), 100)
	if err != nil {
		b.Fatal(err)
	}
	mc := NewMonteCarlo(1)
	mc.Runs = 1000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mc.Yield(arr, 0.95); err != nil {
			b.Fatal(err)
		}
	}
}

func TestShiftedYieldDegenerateAndInvalid(t *testing.T) {
	pl, err := sqgrid.PlacementWithPrimaryTarget(36, 1)
	if err != nil {
		t.Fatal(err)
	}
	mc := NewMonteCarlo(1)
	mc.Runs = 200
	res, err := mc.ShiftedYield(pl, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Yield != 1 {
		t.Errorf("yield at p=1 is %v", res.Yield)
	}
	if _, err := mc.ShiftedYield(pl, 1.5); err == nil {
		t.Error("p=1.5 accepted")
	}
	if _, err := mc.ShiftedYield(pl, math.NaN()); err == nil {
		t.Error("NaN accepted")
	}
	noSpares := pl
	noSpares.SpareRows = 0
	if _, err := mc.ShiftedYield(noSpares, 0.95); err == nil {
		t.Error("placement without spare rows accepted")
	}
}

func TestShiftedYieldDeterministicAcrossWorkerCounts(t *testing.T) {
	pl, err := sqgrid.PlacementWithPrimaryTarget(36, 2)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) Result {
		mc := NewMonteCarlo(77)
		mc.Runs = 1000
		mc.Workers = workers
		res, err := mc.ShiftedYield(pl, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := run(1), run(8); a != b {
		t.Errorf("shifted yield differs across worker counts: %+v vs %+v", a, b)
	}
}

func TestShiftedYieldBelowInterstitialAtEqualN(t *testing.T) {
	// The paper's argument: at equal primary-cell counts, interstitial
	// redundancy with local reconfiguration beats boundary spare rows with
	// shifted replacement (and both beat no redundancy at moderate q).
	const n, p = 60, 0.95
	pl, err := sqgrid.PlacementWithPrimaryTarget(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	mc := NewMonteCarlo(5)
	mc.Runs = 2000
	shifted, err := mc.ShiftedYield(pl, p)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := layout.BuildWithPrimaryTarget(layout.DTMB26(), n)
	if err != nil {
		t.Fatal(err)
	}
	local, err := mc.Yield(arr, p)
	if err != nil {
		t.Fatal(err)
	}
	if shifted.Yield >= local.Yield {
		t.Errorf("shifted %v should trail local reconfiguration %v", shifted.Yield, local.Yield)
	}
	if base := NoRedundancy(p, n); shifted.Yield <= base {
		t.Errorf("shifted %v should beat no redundancy %v", shifted.Yield, base)
	}
}

func TestShiftedYieldExtraSpareRowsAddAreaNotCapacity(t *testing.T) {
	// Under strict adjacent shifting a column absorbs at most one repair, so
	// survival depends only on the working rows plus the first spare row:
	// extra spare rows leave yield statistically flat (the estimates differ
	// only through the PRNG consuming more cells) while effective yield
	// drops with the added area — the paper's scaling argument against
	// boundary redundancy.
	mc := NewMonteCarlo(11)
	mc.Runs = 1500
	pl1, err := sqgrid.PlacementWithPrimaryTarget(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	pl3, err := sqgrid.PlacementWithPrimaryTarget(16, 3)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := mc.ShiftedYield(pl1, 0.90)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := mc.ShiftedYield(pl3, 0.90)
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(r3.Yield - r1.Yield); diff > 0.06 {
		t.Errorf("yield should be flat across spare rows: %v vs %v", r1.Yield, r3.Yield)
	}
	ey1 := EffectiveYieldCells(r1.Yield, 16, pl1.Grid.NumCells())
	ey3 := EffectiveYieldCells(r3.Yield, 16, pl3.Grid.NumCells())
	if ey3 >= ey1 {
		t.Errorf("effective yield must fall with added spare area: %v (1 row) vs %v (3 rows)", ey1, ey3)
	}
}

func TestShiftedYieldCancellation(t *testing.T) {
	pl, err := sqgrid.PlacementWithPrimaryTarget(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	mc := NewMonteCarlo(3)
	mc.Runs = 5_000_000
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := mc.ShiftedYieldContext(ctx, pl, 0.95)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation not observed")
	}
}

// TestShiftedYieldMatchesShiftSessionReference pins the allocation-free
// column-scan trial inside ShiftedYieldContext to the authoritative
// reconfig.ShiftSession semantics: estimating through mc.run with a
// session-driven trial must give the identical Result for identical
// (seed, runs, chunk size).
func TestShiftedYieldMatchesShiftSessionReference(t *testing.T) {
	for _, tc := range []struct{ n, rows int }{{10, 1}, {24, 1}, {24, 2}, {36, 3}} {
		pl, err := sqgrid.PlacementWithPrimaryTarget(tc.n, tc.rows)
		if err != nil {
			t.Fatal(err)
		}
		mc := NewMonteCarlo(123)
		mc.Runs = 800
		got, err := mc.ShiftedYield(pl, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		// Reference estimator: same kernel, trial driven by ShiftSession
		// with deepest-first repairs.
		order := pl.UsedCells()
		sort.Slice(order, func(i, j int) bool {
			if order[i].Y != order[j].Y {
				return order[i].Y > order[j].Y
			}
			return order[i].X < order[j].X
		})
		numCells := pl.Grid.NumCells()
		ref := NewMonteCarlo(123)
		ref.Runs = 800
		want, err := ref.run(context.Background(), func(_ *kernelProbe) (trialProgram, error) {
			fs := defects.NewFaultSet(numCells)
			return trialProgram{trial: func(in *defects.Injector) (bool, error) {
				fs = in.BernoulliN(numCells, 0.9, fs)
				if fs.Count() == 0 {
					return true, nil
				}
				faults := make([]sqgrid.Coord, 0, fs.Count())
				for i := 0; i < numCells; i++ {
					if fs.IsFaulty(layout.CellID(i)) {
						faults = append(faults, pl.Grid.CoordOf(i))
					}
				}
				session, err := reconfig.NewShiftSession(pl, faults)
				if err != nil {
					return false, err
				}
				for _, c := range order {
					if !fs.IsFaulty(layout.CellID(pl.Grid.Index(c))) {
						continue
					}
					if res := session.Repair(c, reconfig.ShiftOptions{}); !res.OK {
						return false, nil
					}
				}
				return true, nil
			}}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("n=%d rows=%d: column-scan %+v != session reference %+v", tc.n, tc.rows, got, want)
		}
	}
}
