#!/usr/bin/env bash
# bench.sh — run the hex and clustered-defect kernel benchmarks and emit a
# machine-readable baseline to BENCH_hex_cluster.json (at the repo root, or
# at $1 if given). Compare runs with:
#
#   scripts/bench.sh && git diff BENCH_hex_cluster.json
#
# BENCH_PATTERN and BENCH_COUNT override the benchmark selection and the
# repetition count (defaults: the hex/clustered kernels, 1 repetition).
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_hex_cluster.json}"
pattern="${BENCH_PATTERN:-HexYieldKernel|ClusteredDefectKernel|ClusteredInjector}"
count="${BENCH_COUNT:-1}"

raw="$(go test -run '^$' -bench "$pattern" -benchmem -count "$count" .)"

{
  echo '{'
  echo '  "suite": "dmfb hex + clustered-defect kernels",'
  echo "  \"go\": \"$(go env GOVERSION)\","
  echo "  \"pattern\": \"$pattern\","
  echo '  "benchmarks": ['
  printf '%s\n' "$raw" | awk '
    /^Benchmark/ {
      name = $1; sub(/-[0-9]+$/, "", name)
      line = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
                     name, $2, $3, $5, $7)
      if (n++) printf(",\n")
      printf("%s", line)
    }
    END { printf("\n") }'
  echo '  ]'
  echo '}'
} > "$out"

echo "wrote $out:"
cat "$out"
