#!/usr/bin/env bash
# bench.sh — run the kernel and API benchmark suites and emit
# machine-readable baselines at the repo root:
#
#   BENCH_hex_cluster.json  hex + clustered-defect kernels
#   BENCH_v2_api.json       v2 job store + client streaming
#
# Compare runs with:
#
#   scripts/bench.sh && git diff BENCH_hex_cluster.json BENCH_v2_api.json
#
# BENCH_COUNT overrides the repetition count (default 1). Passing a single
# argument restores the historical single-suite behavior: emit only the
# kernel suite to that path (BENCH_PATTERN still overrides its selection).
set -euo pipefail
cd "$(dirname "$0")/.."

count="${BENCH_COUNT:-1}"

# emit_suite NAME PATTERN OUT — run one benchmark selection and write its
# JSON baseline.
emit_suite() {
  local name="$1" pattern="$2" out="$3"
  local raw
  raw="$(go test -run '^$' -bench "$pattern" -benchmem -count "$count" .)"
  {
    echo '{'
    echo "  \"suite\": \"$name\","
    echo "  \"go\": \"$(go env GOVERSION)\","
    echo "  \"pattern\": \"$pattern\","
    echo '  "benchmarks": ['
    printf '%s\n' "$raw" | awk '
      /^Benchmark/ {
        name = $1; sub(/-[0-9]+$/, "", name)
        line = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
                       name, $2, $3, $5, $7)
        if (n++) printf(",\n")
        printf("%s", line)
      }
      END { printf("\n") }'
    echo '  ]'
    echo '}'
  } > "$out"
  echo "wrote $out:"
  cat "$out"
}

if [ $# -ge 1 ]; then
  emit_suite "dmfb hex + clustered-defect kernels" \
    "${BENCH_PATTERN:-HexYieldKernel|ClusteredDefectKernel|ClusteredInjector}" "$1"
  exit 0
fi

emit_suite "dmfb hex + clustered-defect kernels" \
  "${BENCH_PATTERN:-HexYieldKernel|ClusteredDefectKernel|ClusteredInjector}" \
  BENCH_hex_cluster.json
emit_suite "dmfb v2 job store + client streaming" \
  'JobStore|ClientJobStream' \
  BENCH_v2_api.json
