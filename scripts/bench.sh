#!/usr/bin/env bash
# bench.sh — run the kernel and API benchmark suites and emit
# machine-readable baselines at the repo root:
#
#   BENCH_kernel_opt.json   Monte-Carlo kernel suite, before/after: "before"
#                           is read from the committed BENCH_hex_cluster.json
#                           baseline, "after" is this run
#   BENCH_hex_cluster.json  hex + clustered-defect kernels
#   BENCH_v2_api.json       v2 job store + client streaming
#
# The kernel benchmarks run exactly once per invocation: one raw pass over
# the union pattern feeds both BENCH_kernel_opt.json ("after" side) and
# BENCH_hex_cluster.json, so the two files can never disagree about the
# same benchmark within one run.
#
# Compare runs with:
#
#   scripts/bench.sh && git diff BENCH_*.json
#
# BENCH_COUNT overrides the repetition count (default 1). Passing a single
# argument restores the historical single-suite behavior: emit only the
# kernel suite to that path (BENCH_PATTERN still overrides its selection).
set -euo pipefail
cd "$(dirname "$0")/.."

count="${BENCH_COUNT:-1}"

# run_bench PATTERN — one raw `go test -bench` pass.
run_bench() {
  go test -run '^$' -bench "$1" -benchmem -count "$count" .
}

# format_suite NAME PATTERN OUT RAW — write the benchmarks of RAW whose
# names match PATTERN as a JSON baseline.
format_suite() {
  local name="$1" pattern="$2" out="$3" raw="$4"
  {
    echo '{'
    echo "  \"suite\": \"$name\","
    echo "  \"go\": \"$(go env GOVERSION)\","
    echo "  \"pattern\": \"$pattern\","
    echo '  "benchmarks": ['
    printf '%s\n' "$raw" | awk -v pat="$pattern" '
      /^Benchmark/ {
        name = $1; sub(/-[0-9]+$/, "", name)
        if (name !~ pat) next
        line = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
                       name, $2, $3, $5, $7)
        if (n++) printf(",\n")
        printf("%s", line)
      }
      END { printf("\n") }'
    echo '  ]'
    echo '}'
  } > "$out"
  echo "wrote $out:"
  cat "$out"
}

# emit_suite NAME PATTERN OUT — run one benchmark selection and write its
# JSON baseline (the historical single-suite entry point).
emit_suite() {
  format_suite "$1" "$2" "$3" "$(run_bench "$2")"
}

# format_kernel_opt BASELINE OUT PATTERN RAW — write a before/after
# comparison: "before" fields come from BASELINE (the baseline JSON written
# by the previous run), "after" from RAW, plus the ns_per_op speedup where
# both sides exist. Benchmarks the baseline suite does not record (e.g.
# MonteCarloKernel) take their "before" from the previous OUT's "after"
# side, so the comparison self-populates after the first run. Must be
# called BEFORE format_suite refreshes BASELINE, or "before" silently
# becomes "after".
format_kernel_opt() {
  local baseline="$1" out="$2" pattern="$3" raw="$4"
  # Write to a temp file and move into place at the end: redirecting the
  # block straight to $out would truncate it before the awk below reads it
  # back as the prev-run fallback source.
  local tmp
  tmp="$(mktemp "${out}.XXXXXX")"
  {
    echo '{'
    echo '  "suite": "dmfb Monte-Carlo kernel: zero-allocation trial path, before/after",'
    echo "  \"go\": \"$(go env GOVERSION)\","
    echo "  \"pattern\": \"$pattern\","
    echo "  \"baseline\": \"$baseline\","
    echo '  "benchmarks": ['
    printf '%s\n' "$raw" | awk -v base="$baseline" -v prev="$out" -v pat="$pattern" '
      BEGIN {
        while ((getline line < base) > 0) {
          if (line !~ /"name":/) continue
          gsub(/[{}",:]/, " ", line)
          n = split(line, f, /[ \t]+/)
          bn = ""
          for (i = 1; i <= n; i++) {
            if (f[i] == "name") bn = f[i+1]
            else if (f[i] == "ns_per_op") ns[bn] = f[i+1]
            else if (f[i] == "bytes_per_op") by[bn] = f[i+1]
            else if (f[i] == "allocs_per_op") al[bn] = f[i+1]
          }
        }
        close(base)
        # Fallback "before" source: the previous before/after file. Each of
        # its benchmark lines carries the key set twice (before then after);
        # left-to-right last-wins assignment keeps the "after" values, which
        # are exactly the numbers of the previous run.
        while ((getline line < prev) > 0) {
          if (line !~ /"name":/) continue
          gsub(/[{}",:]/, " ", line)
          n = split(line, f, /[ \t]+/)
          bn = ""
          for (i = 1; i <= n; i++) {
            if (f[i] == "name") bn = f[i+1]
            else if (f[i] == "ns_per_op") fns[bn] = f[i+1]
            else if (f[i] == "bytes_per_op") fby[bn] = f[i+1]
            else if (f[i] == "allocs_per_op") fal[bn] = f[i+1]
          }
        }
        close(prev)
        for (bn in fns) {
          if (!(bn in ns)) { ns[bn] = fns[bn]; by[bn] = fby[bn]; al[bn] = fal[bn] }
        }
      }
      /^Benchmark/ {
        name = $1; sub(/-[0-9]+$/, "", name)
        if (name !~ pat) next
        if (name in ns)
          before = sprintf("{\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", ns[name], by[name], al[name])
        else
          before = "null"
        after = sprintf("{\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", $3, $5, $7)
        speedup = (name in ns && $3 + 0 > 0) ? sprintf("%.2f", ns[name] / $3) : "null"
        line = sprintf("    {\"name\": \"%s\", \"before\": %s, \"after\": %s, \"speedup\": %s}", name, before, after, speedup)
        if (n2++) printf(",\n")
        printf("%s", line)
      }
      END { printf("\n") }'
    echo '  ]'
    echo '}'
  } > "$tmp"
  mv "$tmp" "$out"
  echo "wrote $out:"
  cat "$out"
}

if [ $# -ge 1 ]; then
  emit_suite "dmfb hex + clustered-defect kernels" \
    "${BENCH_PATTERN:-HexYieldKernel|ClusteredDefectKernel|ClusteredInjector|AdaptiveHighSurvival}" "$1"
  exit 0
fi

# One raw pass over the union of the kernel selections feeds both kernel
# files. The before/after file is formatted first: it reads
# BENCH_hex_cluster.json as the "before" side, so it must see the previous
# run's numbers, not this run's.
hex_pattern="${BENCH_PATTERN:-HexYieldKernel|ClusteredDefectKernel|ClusteredInjector|AdaptiveHighSurvival}"
opt_pattern='HexYieldKernel|ClusteredDefectKernel|MonteCarloKernel'
kernel_raw="$(run_bench "$hex_pattern|$opt_pattern")"
format_kernel_opt BENCH_hex_cluster.json BENCH_kernel_opt.json "$opt_pattern" "$kernel_raw"
format_suite "dmfb hex + clustered-defect kernels" "$hex_pattern" \
  BENCH_hex_cluster.json "$kernel_raw"
emit_suite "dmfb v2 job store + client streaming" \
  'JobStore|ClientJobStream' \
  BENCH_v2_api.json
