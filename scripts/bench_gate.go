// Command bench_gate is the CI perf-regression gate. It compares a fresh
// `go test -bench` run against the committed BENCH_*.json baselines and
// fails when a benchmark loses more than -max-regress percent throughput
// (ns/op growth) or, on the pinned kernel paths, allocates even one more
// object per op than its baseline — the zero-allocation trial path is a
// hard invariant, not a budget.
//
// Usage, from the repo root:
//
//	go run ./scripts                      # run the benchmarks, then gate
//	go test -run '^$' -bench ... -benchmem . | go run ./scripts -input -
//	go run ./scripts -lint-metrics http://localhost:8080/metrics
//
// -input reads a previously captured raw benchmark output ("-" = stdin)
// instead of re-running, which is how CI gates one bench pass and how the
// gate's own CI self-test feeds it a doctored slowdown. The regression
// threshold can also be set via BENCH_GATE_MAX_REGRESS (percent).
//
// -lint-metrics switches to exposition mode: fetch or read one Prometheus
// text-format payload, validate it with the telemetry parser, and require
// the dmfb instrument families to be present — the booted-server /metrics
// check in CI.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"

	"dmfb/internal/telemetry"
)

// benchResult is one benchmark measurement, from a baseline or a run.
type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// baselineFile mirrors the BENCH_*.json schema written by scripts/bench.sh.
type baselineFile struct {
	Suite      string        `json:"suite"`
	Pattern    string        `json:"pattern"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// defaultBaselines are the committed suite files the gate checks; the
// before/after comparison file (BENCH_kernel_opt.json) has a different
// schema and is derived from these, so it is not a gate input.
var defaultBaselines = []string{"BENCH_hex_cluster.json", "BENCH_v2_api.json"}

// defaultAllocStrict names the pinned kernel paths where any allocs/op
// increase fails the gate, matching the AllocsPerRun pins in the tests.
const defaultAllocStrict = "HexYieldKernel|ClusteredDefectKernel|ClusteredInjector|MonteCarloKernel"

// loadBaselines reads and merges the baseline files into name → result.
func loadBaselines(paths []string) (map[string]benchResult, error) {
	out := make(map[string]benchResult)
	for _, path := range paths {
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var bf baselineFile
		if err := json.Unmarshal(raw, &bf); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if len(bf.Benchmarks) == 0 {
			return nil, fmt.Errorf("%s: no benchmarks (regenerate with scripts/bench.sh)", path)
		}
		for _, b := range bf.Benchmarks {
			out[b.Name] = b
		}
	}
	return out, nil
}

// parseBenchOutput extracts benchmark lines from raw `go test -bench
// -benchmem` output: name, ns/op, B/op, allocs/op. The GOMAXPROCS suffix
// is stripped so names match the baselines. Repeated measurements of one
// benchmark (-count > 1) keep the fastest ns/op and the worst allocs/op:
// the gate should neither fail on one noisy slow iteration nor pass a real
// allocation on one lucky line.
func parseBenchOutput(r io.Reader) (map[string]benchResult, error) {
	out := make(map[string]benchResult)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 3 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		name := regexp.MustCompile(`-\d+$`).ReplaceAllString(f[0], "")
		cur := benchResult{Name: name}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchmark line %q: value %q: %w", sc.Text(), f[i], err)
			}
			switch f[i+1] {
			case "ns/op":
				cur.NsPerOp = v
			case "B/op":
				cur.BytesPerOp = v
			case "allocs/op":
				cur.AllocsPerOp = v
			}
		}
		if cur.NsPerOp == 0 {
			continue // a metric-less line (e.g. custom units only)
		}
		if prev, ok := out[name]; ok {
			if prev.NsPerOp < cur.NsPerOp {
				cur.NsPerOp = prev.NsPerOp
			}
			if prev.AllocsPerOp > cur.AllocsPerOp {
				cur.AllocsPerOp = prev.AllocsPerOp
			}
			if prev.BytesPerOp > cur.BytesPerOp {
				cur.BytesPerOp = prev.BytesPerOp
			}
		}
		out[name] = cur
	}
	return out, sc.Err()
}

// gate compares current results against the baselines and returns the list
// of violations (empty = pass). Baseline benchmarks missing from the run
// are violations — a silently deleted benchmark must not pass the gate —
// but extra benchmarks in the run are fine.
func gate(baselines, current map[string]benchResult, maxRegressPct float64, allocStrict *regexp.Regexp) []string {
	var violations []string
	for name, base := range baselines {
		cur, ok := current[name]
		if !ok {
			violations = append(violations, fmt.Sprintf(
				"%s: present in baseline but missing from the benchmark run", name))
			continue
		}
		if limit := base.NsPerOp * (1 + maxRegressPct/100); cur.NsPerOp > limit {
			violations = append(violations, fmt.Sprintf(
				"%s: ns/op %.0f exceeds baseline %.0f by more than %.0f%% (limit %.0f)",
				name, cur.NsPerOp, base.NsPerOp, maxRegressPct, limit))
		}
		if allocStrict.MatchString(name) && cur.AllocsPerOp > base.AllocsPerOp {
			violations = append(violations, fmt.Sprintf(
				"%s: allocs/op rose %.0f → %.0f on a pinned kernel path (any increase fails)",
				name, base.AllocsPerOp, cur.AllocsPerOp))
		}
	}
	return violations
}

// benchPattern unions the baselines' selection patterns for a fresh run.
func benchPattern(paths []string) (string, error) {
	var parts []string
	for _, path := range paths {
		raw, err := os.ReadFile(path)
		if err != nil {
			return "", err
		}
		var bf baselineFile
		if err := json.Unmarshal(raw, &bf); err != nil {
			return "", fmt.Errorf("%s: %w", path, err)
		}
		if bf.Pattern != "" {
			parts = append(parts, bf.Pattern)
		}
	}
	if len(parts) == 0 {
		return "", fmt.Errorf("no baseline declares a bench pattern")
	}
	return strings.Join(parts, "|"), nil
}

// lintMetrics fetches (http[s]://...) or reads one exposition payload,
// validates it, and requires minFamilies dmfb_-prefixed families.
func lintMetrics(target string, minFamilies int, stdout io.Writer) error {
	var body io.ReadCloser
	if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") {
		resp, err := http.Get(target)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return fmt.Errorf("%s: status %s", target, resp.Status)
		}
		body = resp.Body
	} else {
		f, err := os.Open(target)
		if err != nil {
			return err
		}
		body = f
	}
	defer body.Close()
	exp, err := telemetry.ParseExposition(body)
	if err != nil {
		return fmt.Errorf("exposition invalid: %w", err)
	}
	var dmfb int
	for fam := range exp.Families() {
		if strings.HasPrefix(fam, "dmfb_") {
			dmfb++
		}
	}
	fmt.Fprintf(stdout, "exposition valid: %d samples, %d dmfb_ families\n", len(exp.Samples), dmfb)
	if dmfb < minFamilies {
		return fmt.Errorf("only %d dmfb_ families exposed, want at least %d", dmfb, minFamilies)
	}
	return nil
}

func main() {
	var (
		input       = flag.String("input", "", "raw `go test -bench -benchmem` output to gate (\"-\" = stdin); empty = run the benchmarks now")
		maxRegress  = flag.Float64("max-regress", 15, "max tolerated ns/op growth in percent (env BENCH_GATE_MAX_REGRESS overrides)")
		allocRe     = flag.String("alloc-strict", defaultAllocStrict, "regexp of benchmarks where any allocs/op increase fails")
		count       = flag.Int("count", 3, "benchmark repetitions when the gate runs the benchmarks itself")
		lintTarget  = flag.String("lint-metrics", "", "validate a Prometheus exposition (URL or file) instead of gating benchmarks")
		minFamilies = flag.Int("min-families", 10, "with -lint-metrics: minimum dmfb_ metric families required")
	)
	flag.Parse()
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "bench_gate:", err)
		os.Exit(1)
	}

	if *lintTarget != "" {
		if err := lintMetrics(*lintTarget, *minFamilies, os.Stdout); err != nil {
			fail(err)
		}
		return
	}

	if env := os.Getenv("BENCH_GATE_MAX_REGRESS"); env != "" {
		v, err := strconv.ParseFloat(env, 64)
		if err != nil {
			fail(fmt.Errorf("BENCH_GATE_MAX_REGRESS %q: %w", env, err))
		}
		*maxRegress = v
	}
	strict, err := regexp.Compile(*allocRe)
	if err != nil {
		fail(fmt.Errorf("-alloc-strict: %w", err))
	}
	baselines, err := loadBaselines(defaultBaselines)
	if err != nil {
		fail(err)
	}

	var raw io.Reader
	switch *input {
	case "-":
		raw = os.Stdin
	case "":
		pattern, err := benchPattern(defaultBaselines)
		if err != nil {
			fail(err)
		}
		cmd := exec.Command("go", "test", "-run", "^$",
			"-bench", pattern, "-benchmem", "-count", strconv.Itoa(*count), ".")
		cmd.Stderr = os.Stderr
		out, err := cmd.Output()
		if err != nil {
			fail(fmt.Errorf("benchmark run: %w", err))
		}
		os.Stdout.Write(out)
		raw = strings.NewReader(string(out))
	default:
		f, err := os.Open(*input)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		raw = f
	}
	current, err := parseBenchOutput(raw)
	if err != nil {
		fail(err)
	}
	if len(current) == 0 {
		fail(fmt.Errorf("no benchmark lines found in input"))
	}

	violations := gate(baselines, current, *maxRegress, strict)
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "bench_gate: FAIL:", v)
		}
		os.Exit(1)
	}
	fmt.Printf("bench_gate: PASS: %d baseline benchmarks within %.0f%% ns/op, kernel allocs flat\n",
		len(baselines), *maxRegress)
}
