package main

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

var strictKernel = regexp.MustCompile(defaultAllocStrict)

const rawBench = `goos: linux
goarch: amd64
BenchmarkHexYieldKernel-8              994     1225006 ns/op     10440 B/op      29 allocs/op
BenchmarkHexYieldKernel-8             1010     1190000 ns/op     10440 B/op      29 allocs/op
BenchmarkClusteredInjector-8        152269        8287 ns/op         0 B/op       0 allocs/op
BenchmarkJobStore-8                   2276      526698 ns/op    195578 B/op     866 allocs/op
PASS
`

func parsedFixture(t *testing.T) map[string]benchResult {
	t.Helper()
	got, err := parseBenchOutput(strings.NewReader(rawBench))
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestParseBenchOutput(t *testing.T) {
	got := parsedFixture(t)
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(got))
	}
	hex := got["BenchmarkHexYieldKernel"]
	// Two measurements: fastest ns/op wins, worst allocs/op wins.
	if hex.NsPerOp != 1190000 {
		t.Errorf("hex ns/op = %v, want the fastest of the two runs (1190000)", hex.NsPerOp)
	}
	if hex.AllocsPerOp != 29 {
		t.Errorf("hex allocs/op = %v, want 29", hex.AllocsPerOp)
	}
	if inj := got["BenchmarkClusteredInjector"]; inj.AllocsPerOp != 0 || inj.NsPerOp != 8287 {
		t.Errorf("injector = %+v", inj)
	}
}

func TestGatePassesWithinThreshold(t *testing.T) {
	base := map[string]benchResult{
		"BenchmarkHexYieldKernel":    {Name: "BenchmarkHexYieldKernel", NsPerOp: 1225006, AllocsPerOp: 29},
		"BenchmarkClusteredInjector": {Name: "BenchmarkClusteredInjector", NsPerOp: 8287, AllocsPerOp: 0},
		"BenchmarkJobStore":          {Name: "BenchmarkJobStore", NsPerOp: 500000, AllocsPerOp: 800},
	}
	// JobStore came in 5% slower and with more allocs: inside the ns/op
	// budget, and not a pinned kernel path, so allocs may move.
	if v := gate(base, parsedFixture(t), 15, strictKernel); len(v) != 0 {
		t.Errorf("gate reported violations on a healthy run: %v", v)
	}
}

func TestGateFailsOnThroughputRegression(t *testing.T) {
	base := map[string]benchResult{
		"BenchmarkHexYieldKernel": {Name: "BenchmarkHexYieldKernel", NsPerOp: 900000, AllocsPerOp: 29},
	}
	v := gate(base, parsedFixture(t), 15, strictKernel)
	if len(v) != 1 || !strings.Contains(v[0], "ns/op") {
		t.Errorf("want one ns/op violation for a 32%% slowdown, got %v", v)
	}
}

func TestGateFailsOnAnyKernelAllocIncrease(t *testing.T) {
	base := map[string]benchResult{
		"BenchmarkClusteredInjector": {Name: "BenchmarkClusteredInjector", NsPerOp: 8287, AllocsPerOp: 0},
	}
	current := map[string]benchResult{
		"BenchmarkClusteredInjector": {Name: "BenchmarkClusteredInjector", NsPerOp: 8000, AllocsPerOp: 1},
	}
	v := gate(base, current, 15, strictKernel)
	if len(v) != 1 || !strings.Contains(v[0], "allocs/op") {
		t.Errorf("want one allocs/op violation for 0 → 1 on a kernel path, got %v", v)
	}
}

func TestGateFailsOnMissingBenchmark(t *testing.T) {
	base := map[string]benchResult{
		"BenchmarkVanished": {Name: "BenchmarkVanished", NsPerOp: 100, AllocsPerOp: 0},
	}
	v := gate(base, parsedFixture(t), 15, strictKernel)
	if len(v) != 1 || !strings.Contains(v[0], "missing") {
		t.Errorf("want one missing-benchmark violation, got %v", v)
	}
}

func TestLintMetricsValidatesExposition(t *testing.T) {
	dir := t.TempDir()
	good := dir + "/good.prom"
	writeFile(t, good, `# HELP dmfb_kernel_trials_total Trials.
# TYPE dmfb_kernel_trials_total counter
dmfb_kernel_trials_total 42
`)
	var out strings.Builder
	if err := lintMetrics(good, 1, &out); err != nil {
		t.Errorf("valid exposition rejected: %v", err)
	}
	if err := lintMetrics(good, 5, &out); err == nil {
		t.Error("1 family passed a min-families=5 requirement")
	}
	bad := dir + "/bad.prom"
	writeFile(t, bad, "dmfb_broken{le=0.5} not-a-number\n")
	if err := lintMetrics(bad, 1, &out); err == nil {
		t.Error("malformed exposition accepted")
	}
}

func writeFile(t *testing.T, path, body string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}
