#!/usr/bin/env bash
# Multi-process chaos smoke test.
#
# Leg 1 (survival): boots a coordinator (durable store + dispatch) and two
# dtmb-worker processes running under a seeded chaos schedule — crashes
# mid-shard, duplicate submissions, synthetic 503s on the coordinator
# transport — submits a distributed sweep, and byte-compares the merged
# NDJSON stream against the same sweep on a dispatch-free server with a cold
# cache. Chaos a job survives must be invisible in its bytes.
#
# Leg 2 (quarantine): a worker that crashes on every lease against a
# coordinator with a dispatch budget of 2 per shard. The job must fail
# promptly with reason=poison_shard — a typed, observable error instead of
# an infinite redispatch loop — and the quarantine/retry counters must show
# on /metrics.
set -euo pipefail

cd "$(dirname "$0")/.."

CHAOS_PORT="${CHAOS_PORT:-18093}"
LOCAL_PORT="${CHAOS_LOCAL_PORT:-18094}"
QUAR_PORT="${CHAOS_QUAR_PORT:-18095}"
TMP="$(mktemp -d)"
pids=()
cleanup() {
  for pid in "${pids[@]}"; do kill "$pid" 2>/dev/null || true; done
  rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP/dtmb-serve" ./cmd/dtmb-serve
go build -o "$TMP/dtmb-worker" ./cmd/dtmb-worker

wait_ready() {
  for _ in $(seq 1 100); do
    if curl -sf "127.0.0.1:$1/readyz" >/dev/null; then return 0; fi
    sleep 0.1
  done
  echo "server on port $1 never became ready" >&2
  return 1
}

# json_field BLOB NAME extracts a scalar field from a one-line JSON blob.
json_field() { sed -E "s/.*\"$2\":\"?([^\",}]+)\"?.*/\1/" <<<"$1"; }

# metric EXPOSITION NAME prints an unlabeled metric's value, or 0 if absent.
metric() { awk -v n="$2" '$1==n{print $2; found=1} END{if(!found)print 0}' <<<"$1"; }

# wait_terminal PORT JOB polls a job until it leaves the running state and
# echoes its final status blob.
wait_terminal() {
  local status state
  for _ in $(seq 1 600); do
    status=$(curl -sf "127.0.0.1:$1/v2/jobs/$2")
    state=$(json_field "$status" state)
    case "$state" in completed | failed | cancelled) break ;; esac
    sleep 0.2
  done
  echo "$status"
}

echo "=== leg 1: byte identity survives crash/duplicate/transport chaos ==="
GRID='"strategies":["local","hex"],"designs":["DTMB(2,6)"],"n_primaries":[100],"p_min":0.90,"p_max":0.99,"p_points":12,"defect_models":["independent"],"runs":20000,"seed":3'

# Short lease TTL so crashed shards redispatch quickly; a raised dispatch
# budget so a 30% crash rate cannot statistically exhaust any shard.
"$TMP/dtmb-serve" -addr "127.0.0.1:$CHAOS_PORT" -dispatch -store-dir "$TMP/jobs" \
  -shard-size 2 -lease-ttl 1s -max-shard-dispatches 10 -log-level warn &
pids+=($!)
wait_ready "$CHAOS_PORT"

"$TMP/dtmb-worker" -coordinator "http://127.0.0.1:$CHAOS_PORT" -name c1 -poll 100ms -log-level error \
  -chaos 'worker.crash=0.3,worker.duplicate_submit=0.5,transport.5xx=0.05' -chaos-seed 1 &
pids+=($!)
"$TMP/dtmb-worker" -coordinator "http://127.0.0.1:$CHAOS_PORT" -name c2 -poll 100ms -log-level error \
  -chaos 'worker.crash=0.3,worker.duplicate_submit=0.5,transport.5xx=0.05' -chaos-seed 2 &
pids+=($!)

created=$(curl -sf -H 'Content-Type: application/json' \
  -d "{$GRID,\"distributed\":true}" "127.0.0.1:$CHAOS_PORT/v2/jobs")
job=$(json_field "$created" id)
echo "chaos job: $job"

status=$(wait_terminal "$CHAOS_PORT" "$job")
state=$(json_field "$status" state)
if [ "$state" != completed ]; then
  echo "chaos job ended $state: $status" >&2
  exit 1
fi
curl -sfN "127.0.0.1:$CHAOS_PORT/v2/jobs/$job/results?cursor=0" >"$TMP/chaos.ndjson"

# Single-process reference: fresh dispatch-free server, cold cache.
"$TMP/dtmb-serve" -addr "127.0.0.1:$LOCAL_PORT" -log-level warn &
pids+=($!)
wait_ready "$LOCAL_PORT"
local_created=$(curl -sf -H 'Content-Type: application/json' \
  -d "{$GRID}" "127.0.0.1:$LOCAL_PORT/v2/jobs")
local_job=$(json_field "$local_created" id)
wait_terminal "$LOCAL_PORT" "$local_job" >/dev/null
curl -sfN "127.0.0.1:$LOCAL_PORT/v2/jobs/$local_job/results?cursor=0" >"$TMP/local.ndjson"

if ! cmp -s "$TMP/local.ndjson" "$TMP/chaos.ndjson"; then
  echo "chaos-survivor stream is NOT byte-identical to the single-process run:" >&2
  diff "$TMP/local.ndjson" "$TMP/chaos.ndjson" | head -20 >&2
  exit 1
fi
exposition=$(curl -sf "127.0.0.1:$CHAOS_PORT/metrics")
retries=$(metric "$exposition" dmfb_retries_total)
if ! grep -q '^dmfb_retries_total' <<<"$exposition"; then
  echo "/metrics lacks dmfb_retries_total" >&2
  exit 1
fi
echo "byte-identical: $(wc -c <"$TMP/local.ndjson") bytes, $retries shard redispatches absorbed"

echo "=== leg 2: poison shard quarantines with a typed failure ==="
"$TMP/dtmb-serve" -addr "127.0.0.1:$QUAR_PORT" -dispatch -store-dir "$TMP/jobs2" \
  -shard-size 8 -lease-ttl 500ms -max-shard-dispatches 2 -log-level warn &
pids+=($!)
wait_ready "$QUAR_PORT"
"$TMP/dtmb-worker" -coordinator "http://127.0.0.1:$QUAR_PORT" -name poison -poll 50ms \
  -log-level error -chaos 'worker.crash=1' -chaos-seed 3 &
pids+=($!)

SMALL='"strategies":["local"],"designs":["DTMB(2,6)"],"n_primaries":[40],"ps":[0.95],"defect_models":["independent"],"runs":200,"seed":7'
created=$(curl -sf -H 'Content-Type: application/json' \
  -d "{$SMALL,\"distributed\":true}" "127.0.0.1:$QUAR_PORT/v2/jobs")
job=$(json_field "$created" id)
echo "poison job: $job"

status=$(wait_terminal "$QUAR_PORT" "$job")
state=$(json_field "$status" state)
reason=$(json_field "$status" reason)
if [ "$state" != failed ] || [ "$reason" != poison_shard ]; then
  echo "poison job ended state=$state reason=$reason, want failed/poison_shard: $status" >&2
  exit 1
fi
exposition=$(curl -sf "127.0.0.1:$QUAR_PORT/metrics")
quarantined=$(metric "$exposition" dmfb_shards_quarantined_total)
retries=$(metric "$exposition" dmfb_retries_total)
if [ "${quarantined%%.*}" -lt 1 ] || [ "${retries%%.*}" -lt 1 ]; then
  echo "counters: quarantined=$quarantined retries=$retries, want both >= 1" >&2
  exit 1
fi
echo "quarantined after budget: reason=$reason, $quarantined shard(s) quarantined, $retries redispatch(es)"
echo "chaos smoke passed"
