#!/usr/bin/env bash
# Multi-process distributed-sweep smoke test.
#
# Boots one dtmb-serve coordinator (durable store + dispatch) and two
# dtmb-worker processes, submits a distributed sweep job, SIGKILLs one worker
# mid-sweep (so its leases must expire and redispatch to the survivor), then
# byte-compares the merged NDJSON stream against the same sweep evaluated
# in-process on a second, dispatch-free server with a cold cache. Any
# difference — ordering, float formatting, cache provenance — fails the run.
set -euo pipefail

cd "$(dirname "$0")/.."

COORD_PORT="${COORD_PORT:-18091}"
LOCAL_PORT="${LOCAL_PORT:-18092}"
TMP="$(mktemp -d)"
pids=()
cleanup() {
  for pid in "${pids[@]}"; do kill "$pid" 2>/dev/null || true; done
  rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP/dtmb-serve" ./cmd/dtmb-serve
go build -o "$TMP/dtmb-worker" ./cmd/dtmb-worker

wait_ready() {
  for _ in $(seq 1 100); do
    if curl -sf "127.0.0.1:$1/readyz" >/dev/null; then return 0; fi
    sleep 0.1
  done
  echo "server on port $1 never became ready" >&2
  return 1
}

# json_field BLOB NAME extracts a scalar field from a one-line JSON blob.
json_field() { sed -E "s/.*\"$2\":\"?([^\",}]+)\"?.*/\1/" <<<"$1"; }

GRID='"strategies":["local","hex"],"designs":["DTMB(2,6)"],"n_primaries":[100],"p_min":0.90,"p_max":0.99,"p_points":12,"defect_models":["independent"],"runs":60000,"seed":3'

# Coordinator: small shards so the 24-point sweep spreads across both workers
# and a short lease TTL so the killed worker's shards redispatch quickly.
"$TMP/dtmb-serve" -addr "127.0.0.1:$COORD_PORT" -dispatch \
  -store-dir "$TMP/jobs" -shard-size 2 -lease-ttl 2s -log-level warn &
pids+=($!)
wait_ready "$COORD_PORT"

"$TMP/dtmb-worker" -coordinator "http://127.0.0.1:$COORD_PORT" -name w1 -poll 100ms -log-level warn &
w1=$!
pids+=($w1)
"$TMP/dtmb-worker" -coordinator "http://127.0.0.1:$COORD_PORT" -name w2 -poll 100ms -log-level warn &
pids+=($!)

created=$(curl -sf -H 'Content-Type: application/json' \
  -d "{$GRID,\"distributed\":true}" "127.0.0.1:$COORD_PORT/v2/jobs")
job=$(json_field "$created" id)
echo "distributed job: $job"

# SIGKILL one worker mid-sweep: no deregistration, no graceful handoff.
done_pts=0
for _ in $(seq 1 300); do
  status=$(curl -sf "127.0.0.1:$COORD_PORT/v2/jobs/$job")
  done_pts=$(json_field "$status" points_done)
  if [ "$done_pts" -ge 2 ]; then break; fi
  sleep 0.1
done
if [ "$done_pts" -lt 2 ]; then
  echo "job never progressed: $status" >&2
  exit 1
fi
kill -9 "$w1"
echo "killed worker w1 at $done_pts points"

# Follow the stream to completion, then check the job's terminal state.
curl -sfN "127.0.0.1:$COORD_PORT/v2/jobs/$job/results?cursor=0" >"$TMP/distributed.ndjson"
state=$(json_field "$(curl -sf "127.0.0.1:$COORD_PORT/v2/jobs/$job")" state)
if [ "$state" != completed ]; then
  echo "distributed job ended $state" >&2
  exit 1
fi

# Single-process reference: a fresh dispatch-free server, cold cache.
"$TMP/dtmb-serve" -addr "127.0.0.1:$LOCAL_PORT" -log-level warn &
pids+=($!)
wait_ready "$LOCAL_PORT"
local_created=$(curl -sf -H 'Content-Type: application/json' \
  -d "{$GRID}" "127.0.0.1:$LOCAL_PORT/v2/jobs")
local_job=$(json_field "$local_created" id)
curl -sfN "127.0.0.1:$LOCAL_PORT/v2/jobs/$local_job/results?cursor=0" >"$TMP/local.ndjson"

if ! cmp -s "$TMP/local.ndjson" "$TMP/distributed.ndjson"; then
  echo "distributed stream is NOT byte-identical to the single-process run:" >&2
  diff "$TMP/local.ndjson" "$TMP/distributed.ndjson" | head -20 >&2
  exit 1
fi

stats=$(curl -sf "127.0.0.1:$COORD_PORT/v1/stats")
shards=$(json_field "$stats" dispatch_shards_completed)
expired=$(json_field "$stats" dispatch_shards_expired)
echo "byte-identical: $(wc -c <"$TMP/local.ndjson") bytes, $shards shards completed, $expired leases expired"
if [ "$shards" -lt 12 ]; then
  echo "expected the 24-point sweep to complete >= 12 shards, got $shards" >&2
  exit 1
fi
